package core_test

// Regression tests for the quiescent-retire grace-period hazard: the epoch
// schemes' Retire/RetireBlock load the current epoch, and only the caller's
// active announcement bounds how stale that load can be by the time the
// record lands in a limbo bag. A retire from a quiescent context had no such
// pin, so a sufficiently delayed hand-off could race the advance winner's
// bag drain. The fix is two-layered: the raw schemes now panic loudly on an
// unpinned retire (these tests fail against the pre-fix code, which accepted
// it silently), and the Record Manager routes quiescent callers — shutdown
// flushes, data structure postambles, DEBRA+ recovery — through the new
// pin-while-retiring entry point.

import (
	"sync"
	"testing"

	"repro/internal/arena"
	"repro/internal/blockbag"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/reclaim/debra"
	"repro/internal/reclaim/debraplus"
	"repro/internal/reclaim/ebr"
	"repro/internal/reclaim/qsbr"
	"repro/internal/reclaimtest"
)

type rec = reclaimtest.Record

// epochSchemes builds one instance of every epoch scheme (the schemes whose
// retire path requires the pin) for n threads over the given sink.
func epochSchemes(n int, sink core.FreeSink[rec]) map[string]core.Reclaimer[rec] {
	return map[string]core.Reclaimer[rec]{
		"ebr":    ebr.New[rec](n, sink),
		"qsbr":   qsbr.New[rec](n, sink),
		"debra":  debra.New[rec](n, sink),
		"debra+": debraplus.New[rec](n, sink),
	}
}

// TestQuiescentRetirePanics is the headline regression: retiring from a
// quiescent context without a pin must be rejected loudly. Against the
// pre-fix retire path (which accepted the unpinned hand-off and let the
// loaded epoch go stale) this test fails.
func TestQuiescentRetirePanics(t *testing.T) {
	for name, r := range epochSchemes(2, reclaimtest.NewRecordingSink()) {
		t.Run(name, func(t *testing.T) {
			// Fresh threads start quiescent; make it explicit anyway.
			r.EnterQstate(0)
			//lint:allow retirepin the unpinned Retire is the point: this test asserts the runtime panic the analyzer proves absent elsewhere
			if !panics(func() { r.Retire(0, &rec{ID: 1}) }) {
				t.Fatal("quiescent Retire did not panic")
			}
			br := r.(core.BlockReclaimer[rec])
			bag := blockbag.New[rec](nil)
			for i := 0; i < blockbag.BlockSize; i++ {
				bag.Add(&rec{ID: int64(i)})
			}
			blk := bag.DetachAllFullBlocks()
			//lint:allow retirepin deliberate unpinned RetireBlock: asserts the quiescent-retire panic
			if !panics(func() { br.RetireBlock(0, blk) }) {
				t.Fatal("quiescent RetireBlock did not panic")
			}
		})
	}
}

// TestPinRetireMakesQuiescentRetireSafe exercises the new entry point: a
// quiescent thread pins, retires, unpins; the records are eventually freed
// exactly once and quiescence is restored.
func TestPinRetireMakesQuiescentRetireSafe(t *testing.T) {
	const n = 2
	for _, name := range []string{"ebr", "qsbr", "debra", "debra+"} {
		t.Run(name, func(t *testing.T) {
			sink := reclaimtest.NewRecordingSink()
			r := epochSchemes(n, sink)[name]
			p := r.(core.RetirePinner)

			r.EnterQstate(0)
			p.PinRetire(0)
			for i := 0; i < 3*blockbag.BlockSize; i++ {
				r.Retire(0, &rec{ID: int64(i)})
			}
			p.UnpinRetire(0)
			if !r.IsQuiescent(0) {
				t.Fatal("thread not quiescent after UnpinRetire")
			}
			// Drive grace periods with ordinary operations until the limbo
			// drains (DrainLimbo is the shutdown shortcut; here we check the
			// records flow out through the normal epoch machinery too).
			for i := 0; i < 2000 && r.Stats().Freed < r.Stats().Retired; i++ {
				for tid := 0; tid < n; tid++ {
					r.LeaveQstate(tid)
					r.EnterQstate(tid)
				}
			}
			// DEBRA+ amortises its scan over large bags; force the tail out.
			if d, ok := r.(core.LimboDrainer); ok && r.Stats().Freed < r.Stats().Retired {
				d.DrainLimbo(0)
			}
			s := r.Stats()
			if s.Freed != s.Retired {
				t.Fatalf("retired %d, freed %d after pin-retire and grace periods", s.Retired, s.Freed)
			}
			if int64(len(sink.Records())) != s.Freed {
				t.Fatalf("sink saw %d frees, stats say %d", len(sink.Records()), s.Freed)
			}
			seen := map[*rec]bool{}
			for _, fr := range sink.Records() {
				if seen[fr] {
					t.Fatal("record freed twice")
				}
				seen[fr] = true
			}
		})
	}
}

// TestManagerRetireFromQuiescentContextAutoPins: the Record Manager keeps
// the historic "Retire works from a quiescent postamble" surface (the hash
// map and BST rely on it) by routing quiescent callers through the pin.
func TestManagerRetireFromQuiescentContextAutoPins(t *testing.T) {
	for _, name := range []string{"ebr", "qsbr", "debra", "debra+"} {
		t.Run(name, func(t *testing.T) {
			alloc := arena.NewBump[rec](1, 0)
			p := pool.New[rec](1, alloc)
			r := epochSchemes(1, p)[name]
			mgr := core.NewRecordManager[rec](alloc, p, r)

			mgr.EnterQstate(0)
			mgr.Retire(0, mgr.Allocate(0)) // must not panic: auto-pinned
			if !mgr.IsQuiescent(0) {
				t.Fatal("thread left non-quiescent by the auto-pinned retire")
			}
			if got := mgr.Stats().Reclaimer.Retired; got != 1 {
				t.Fatalf("Retired = %d want 1", got)
			}
		})
	}
}

// TestFlushRetiredQuiescentPins: the documented FlushRetired contract —
// safe from quiescent shutdown paths — now actually holds: the hand-off of
// a parked batch from a quiescent thread goes through the pin and the
// records are freed exactly once by shutdown draining.
func TestFlushRetiredQuiescentPins(t *testing.T) {
	const n = 2
	for _, name := range []string{"ebr", "qsbr", "debra", "debra+"} {
		t.Run(name, func(t *testing.T) {
			sink := reclaimtest.NewPoisonSink()
			r := epochSchemes(n, sink)[name]
			alloc := arena.NewBump[rec](n, 0)
			mgr := core.NewRecordManager[rec](alloc, nil, r, core.WithRetireBatching(n, blockbag.BlockSize))

			// Park records from a pinned operation, then quiesce with the
			// buffer non-empty (batch not reached).
			mgr.LeaveQstate(0)
			for i := 0; i < blockbag.BlockSize+7; i++ {
				mgr.Retire(0, mgr.Allocate(0))
			}
			mgr.EnterQstate(0)
			if got := mgr.Stats().RetirePending; got != 7 {
				t.Fatalf("RetirePending = %d want 7", got)
			}
			// The quiescent flush: pre-fix this handed records to the scheme
			// with no pin (the racy interleaving); now it pins around it.
			mgr.FlushRetired(0)
			if !mgr.IsQuiescent(0) {
				t.Fatal("thread left non-quiescent by the quiescent flush")
			}
			st := mgr.Stats()
			if st.RetirePending != 0 || st.Reclaimer.Retired != blockbag.BlockSize+7 {
				t.Fatalf("after flush: pending=%d retired=%d", st.RetirePending, st.Reclaimer.Retired)
			}
			mgr.Close()
			st = mgr.Stats()
			if st.Reclaimer.Freed != st.Reclaimer.Retired || st.Unreclaimed != 0 {
				t.Fatalf("after Close: retired=%d freed=%d unreclaimed=%d",
					st.Reclaimer.Retired, st.Reclaimer.Freed, st.Unreclaimed)
			}
			if d := sink.DoubleFrees(); d != 0 {
				t.Fatalf("%d double frees", d)
			}
		})
	}
}

// TestQuiescentFlushRacesAdvance closes the loop on the original
// interleaving: a quiescent-context flusher hands batches over (pinned)
// while another thread continuously advances the epoch and drains limbo
// bags. With the pre-fix unpinned hand-off this is the schedule that could
// land records in the bag being drained; with the pin it must never
// double-free or lose a record. Run under -race in CI.
func TestQuiescentFlushRacesAdvance(t *testing.T) {
	const iters = 400
	for _, name := range []string{"ebr", "qsbr"} {
		t.Run(name, func(t *testing.T) {
			sink := reclaimtest.NewPoisonSink()
			r := epochSchemes(2, sink)[name]
			alloc := arena.NewBump[rec](2, 0)
			mgr := core.NewRecordManager[rec](alloc, nil, r, core.WithRetireBatching(2, 32))

			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // advancing worker: tid 0
				defer wg.Done()
				for i := 0; i < 50*iters; i++ {
					mgr.LeaveQstate(0)
					mgr.Retire(0, mgr.Allocate(0))
					mgr.EnterQstate(0)
				}
			}()
			go func() { // quiescent flusher: tid 1
				defer wg.Done()
				for i := 0; i < iters; i++ {
					mgr.LeaveQstate(1)
					for j := 0; j < 8; j++ {
						mgr.Retire(1, mgr.Allocate(1))
					}
					mgr.EnterQstate(1)
					// The racy hand-off: flush the partial batch while
					// quiescent, concurrent with tid 0's epoch advances.
					mgr.FlushRetired(1)
				}
			}()
			wg.Wait()
			mgr.Close()
			st := mgr.Stats()
			if st.Reclaimer.Freed != st.Reclaimer.Retired {
				t.Fatalf("retired %d != freed %d after Close", st.Reclaimer.Retired, st.Reclaimer.Freed)
			}
			if d := sink.DoubleFrees(); d != 0 {
				t.Fatalf("%d records freed twice", d)
			}
			if st.Unreclaimed != 0 {
				t.Fatalf("unreclaimed = %d after Close", st.Unreclaimed)
			}
		})
	}
}
