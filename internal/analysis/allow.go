package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// The //lint:allow escape hatch. A diagnostic is suppressed when a marker of
// the form
//
//	//lint:allow <analyzer> <reason>
//
// appears on the diagnostic's line (trailing comment) or on the line
// immediately above it. The reason is mandatory — an allow that cannot say
// why it exists is a contract violation in its own right — and markers are
// checked: a malformed marker, a marker naming an analyzer the driver does
// not know, or a reasoned marker that suppresses nothing in a run of its
// analyzer are all diagnostics themselves. The marker set is deliberately
// per-line, not per-file or per-function: every exception is visible at the
// exact call site it excuses.

// allowPrefix introduces a marker comment.
const allowPrefix = "//lint:allow"

// allowMarker is one parsed //lint:allow comment.
type allowMarker struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

// markerDiag is the pseudo-analyzer name under which marker hygiene
// violations are reported.
const markerDiag = "lintallow"

// collectAllows parses every //lint:allow marker in the unit's report-owned
// files. Malformed markers (no analyzer name, or no reason) are returned as
// diagnostics immediately; they never suppress anything.
func collectAllows(u *Unit, known func(string) bool) ([]*allowMarker, []Diagnostic) {
	var markers []*allowMarker
	var diags []Diagnostic
	for _, f := range u.Files {
		if !u.ReportFiles[f] {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not a marker
				}
				// An embedded "//" ends the marker (golden packages append
				// `// want "..."` expectations to marker lines).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: markerDiag,
						Message:  "bare //lint:allow marker: want //lint:allow <analyzer> <reason>",
					})
				case reason == "":
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: markerDiag,
						Message:  "//lint:allow " + name + " has no reason; every exception must say why",
					})
				case known != nil && !known(name):
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: markerDiag,
						Message:  "//lint:allow names unknown analyzer " + strconv.Quote(name),
					})
				default:
					p := u.Fset.Position(c.Pos())
					markers = append(markers, &allowMarker{
						pos: c.Pos(), file: p.Filename, line: p.Line,
						analyzer: name, reason: reason,
					})
				}
			}
		}
	}
	return markers, diags
}

// suppresses reports whether marker m excuses a diagnostic from analyzer at
// position pos: same analyzer, same file, same line or the line below the
// marker (a comment line annotates the statement under it).
func (m *allowMarker) suppresses(analyzer string, pos token.Position) bool {
	return m.analyzer == analyzer && m.file == pos.Filename &&
		(m.line == pos.Line || m.line == pos.Line-1)
}
