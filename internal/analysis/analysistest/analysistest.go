// Package analysistest runs an analyzer over golden packages and checks its
// diagnostics against `// want "regexp"` expectations embedded in the golden
// sources — the same contract as golang.org/x/tools' analysistest, rebuilt
// on the in-repo loader. The golden packages live in a standalone module
// (internal/analysis/testdata, module vettest) whose package paths mirror
// the real repository's (vettest/internal/core, vettest/internal/ds/...),
// so the analyzers' path-suffix package matching sees them exactly as it
// sees the real stack while the deliberate contract violations they seed
// stay out of the main build (`./...` never descends into testdata).
//
// Expectation syntax: a comment containing `want "rx"` (one or more quoted
// regular expressions) on the line a diagnostic is reported at. Every
// diagnostic must match a want on its line and every want must be matched by
// a diagnostic; mismatches in either direction fail the test. The //lint:allow
// machinery runs exactly as under cmd/reclaimvet, so golden packages also
// exercise suppression and marker hygiene (stale or bare markers produce
// diagnostics that can themselves be `want`ed).
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRx extracts quoted expectations from a `want` comment; patterns may be
// double-quoted or backquoted (raw), as in x/tools analysistest.
var wantRx = regexp.MustCompile(`(?://|/\*)\s*want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)

// quotedRx splits the individual quoted patterns of a want comment.
var quotedRx = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// Run loads the golden packages matching patterns (resolved inside dir, the
// testdata module) and checks a's diagnostics against their `want`
// expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	units, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading golden packages: %v", err)
	}
	// Marker-name validation knows only the analyzer under test, so golden
	// packages can seed deliberate unknown-analyzer markers and `want` the
	// resulting hygiene diagnostic.
	known := func(name string) bool { return name == a.Name }
	for _, u := range units {
		diags, err := analysis.RunUnit(u, []*analysis.Analyzer{a}, known)
		if err != nil {
			t.Fatalf("%s: %v", u.PkgPath, err)
		}
		checkUnit(t, u, diags)
	}
}

// wantKey identifies one source line.
type wantKey struct {
	file string
	line int
}

// want is one unmatched expectation.
type want struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// checkUnit diffs a unit's diagnostics against its want comments.
func checkUnit(t *testing.T, u *analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*want{}
	for f := range u.ReportFiles {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, q := range quotedRx.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, q, err)
						continue
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants[key] = append(wants[key], &want{rx: rx, raw: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.raw)
			}
		}
	}
}

// Dir returns the conventional testdata module location for an analyzer
// test living at internal/analysis/passes/<name>: three levels up.
func Dir() string { return "../../testdata" }

// Sprint formats diagnostics for debugging golden packages (exported for
// ad-hoc use in analyzer tests).
func Sprint(u *analysis.Unit, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: %s: %s\n", u.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return b.String()
}
