// Package core stubs the adaptive controller with seeded wall-clock reads
// for the noclock analyzer (the path ends in internal/core, so the analyzer
// treats it as the real controller package).
package core

import "time"

// Controller mirrors the adaptive controller's Step-rooted call graph.
type Controller struct {
	last  time.Time
	steps int
}

// Step advances one decision epoch; it must stay wall-clock free.
func (c *Controller) Step() {
	c.steps++
	c.observe()
	_ = time.Now() // want `time\.Now in Controller\.Step, which is reachable from Controller\.Step`
}

func (c *Controller) observe() {
	_ = time.Since(c.last) // want `time\.Since in Controller\.observe, which is reachable from Controller\.Step`
}

// Run owns the ticker and calls Step; it is not reachable *from* Step, so
// its clock use is the legitimate boundary.
func (c *Controller) Run() {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for range t.C {
		c.Step()
	}
}
