// Package clocktest drives the controller stub from tests (noclock golden
// for the Step-driven-test rule).
package clocktest

import "vettest/internal/core"

// Drive advances the controller n steps.
func Drive(c *core.Controller, n int) {
	for i := 0; i < n; i++ {
		c.Step()
	}
}
