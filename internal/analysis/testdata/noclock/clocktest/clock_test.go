package clocktest

import (
	"testing"
	"time"

	"vettest/internal/core"
)

func TestStepDriven(t *testing.T) {
	var c core.Controller
	c.Step()
	_ = time.Now() // want `time\.Now in a test file that drives Controller\.Step`
}

func TestElapsed(t *testing.T) {
	start := time.Now() // want `time\.Now in a test file that drives Controller\.Step`
	var c core.Controller
	Drive(&c, 3)
	_ = time.Since(start) // want `time\.Since in a test file that drives Controller\.Step`
}
