package clocktest

import (
	"testing"
	"time"
)

// This file never drives Controller.Step, so wall-clock reads are allowed:
// the noclock test rule is per file.
func TestNoStepHere(t *testing.T) {
	start := time.Now()
	_ = time.Since(start)
}
