// Package a seeds quiescent-retire contract violations for the retirepin
// analyzer.
package a

import "vettest/internal/core"

type node struct{ v int }

func raw(r core.Reclaimer[node], tid int, n *node) {
	r.Retire(tid, n) // want `raw Reclaimer\.Retire is not dominated by LeaveQstate/PinRetire`
}

func pinned(r core.Reclaimer[node], tid int, n *node) {
	r.LeaveQstate(tid)
	r.Retire(tid, n)
	r.EnterQstate(tid)
}

func unpinnedAfterEnter(r core.Reclaimer[node], tid int, n *node) {
	r.LeaveQstate(tid)
	r.EnterQstate(tid)
	r.Retire(tid, n) // want `raw Reclaimer\.Retire is not dominated`
}

func pinOnOneBranchOnly(r core.Reclaimer[node], tid int, n *node, cond bool) {
	if cond {
		r.LeaveQstate(tid)
	}
	r.Retire(tid, n) // want `raw Reclaimer\.Retire is not dominated`
}

func pinOnBothBranches(r core.Reclaimer[node], tid int, n *node, cond bool) {
	if cond {
		r.LeaveQstate(tid)
	} else {
		r.LeaveQstate(tid)
	}
	r.Retire(tid, n)
}

func pinOrBail(r core.Reclaimer[node], tid int, n *node) {
	if !r.LeaveQstate(tid) {
		return
	}
	r.Retire(tid, n)
}

func pinnedViaPinner(p core.RetirePinner, r core.Reclaimer[node], tid int, n *node) {
	p.PinRetire(tid)
	defer p.UnpinRetire(tid) // the deferred unpin must not clear the live pin
	r.Retire(tid, n)
}

func autoPinManager(m *core.RecordManager[node], tid int, n *node) {
	m.Retire(tid, n)    // auto-pinning wrapper: exempt
	m.FlushRetired(tid) // auto-pinning wrapper: exempt
}

func autoPinHandle(h *core.ThreadHandle[node], n *node) {
	h.Retire(n) // auto-pinning wrapper: exempt
	h.FlushRetired()
}

func rawHandle(h core.ReclaimerHandle[node], n *node) {
	h.Retire(n) // want `raw ReclaimerHandle\.Retire is not dominated`
}

func pinnedHandle(h core.ReclaimerHandle[node], n *node) {
	h.LeaveQstate()
	h.Retire(n)
	h.EnterQstate()
}

func pinnedLoop(r core.Reclaimer[node], tid int, ns []*node) {
	r.LeaveQstate(tid)
	for _, n := range ns {
		r.Retire(tid, n)
	}
	r.EnterQstate(tid)
}

func pinnedClosure(r core.Reclaimer[node], tid int, n *node, drain func(func())) {
	r.LeaveQstate(tid)
	drain(func() {
		r.Retire(tid, n) // pinned at creation point (synchronous callback)
	})
	r.EnterQstate(tid)
}

func spawnedRetire(r core.Reclaimer[node], tid int, n *node) {
	r.LeaveQstate(tid)
	go r.Retire(tid, n) // want `raw Reclaimer\.Retire is not dominated`
	r.EnterQstate(tid)
}

func rawBlock(b core.BlockReclaimer[node], tid int, blk *node) {
	b.RetireBlock(tid, blk) // want `raw BlockReclaimer\.RetireBlock is not dominated`
}

func rawChain(r core.Reclaimer[node], tid int) {
	core.RetireChain(r, tid) // want `raw RetireChain is not dominated`
}

func pinnedChain(p core.RetirePinner, r core.Reclaimer[node], tid int) {
	p.PinRetire(tid)
	core.RetireChain(r, tid)
	p.UnpinRetire(tid)
}
