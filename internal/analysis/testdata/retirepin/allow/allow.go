// Package allow exercises the //lint:allow escape hatch and its hygiene
// diagnostics under the retirepin analyzer.
package allow

import "vettest/internal/core"

type node struct{ v int }

func suppressedAbove(r core.Reclaimer[node], tid int, n *node) {
	//lint:allow retirepin golden: exercising line-above suppression
	r.Retire(tid, n)
}

func suppressedTrailing(r core.Reclaimer[node], tid int, n *node) {
	r.Retire(tid, n) //lint:allow retirepin golden: exercising same-line suppression
}

func bareMarker(r core.Reclaimer[node], tid int, n *node) {
	//lint:allow // want `bare //lint:allow marker`
	r.Retire(tid, n) // want `raw Reclaimer\.Retire is not dominated`
}

func missingReason(r core.Reclaimer[node], tid int, n *node) {
	//lint:allow retirepin // want `has no reason`
	r.Retire(tid, n) // want `raw Reclaimer\.Retire is not dominated`
}

func unknownAnalyzer(r core.Reclaimer[node], tid int, n *node) {
	//lint:allow nosuchcheck the analyzer name is wrong // want `unknown analyzer "nosuchcheck"`
	r.Retire(tid, n) // want `raw Reclaimer\.Retire is not dominated`
}

func staleMarker(r core.Reclaimer[node], tid int, n *node) {
	//lint:allow retirepin nothing on the next line violates anything // want `suppresses nothing`
	r.LeaveQstate(tid)
	r.Retire(tid, n)
	r.EnterQstate(tid)
}
