// Package swgold seeds single-writer stat-cell violations for the
// singlewriter analyzer — the typed port of the old hotpathguard grep
// guard's seeded-regression self-test.
package swgold

import (
	"sync/atomic"

	"vettest/internal/core"
)

type thread struct {
	retired core.Counter
	freed   atomic.Int64 // want `per-thread stat counter thread\.freed declared as sync/atomic\.Int64`
	epoch   atomic.Uint64
	_       [core.PadBytes]byte
}

type threadStats struct {
	scans    atomic.Uint64 // want `per-thread stat counter threadStats\.scans declared as sync/atomic\.Uint64`
	restarts core.Counter
}

type sidecar struct {
	retired atomic.Int64 // not a carrier struct: atomics are fine here
}

func rmwMethod(t *thread) {
	t.freed.Add(1) // want `thread\.freed\.Add is an atomic RMW on a per-thread stat field`
	t.epoch.Add(1) // epoch is a multi-writer synchronisation word, not a stat
	t.retired.Inc()
}

type poolThread struct {
	reused int64
	local  int64
}

func rmwFunc(p *poolThread) {
	atomic.AddInt64(&p.reused, 1) // want `atomic\.AddInt64 targets per-thread stat field poolThread\.reused`
	atomic.AddInt64(&p.local, 1)  // local is not a stat name
	p.reused++                    // the single-writer plain increment is the point
}

func swapFunc(p *poolThread) {
	atomic.SwapInt64(&p.reused, 0) // want `atomic\.SwapInt64 targets per-thread stat field poolThread\.reused`
}

func elsewhere(s *sidecar) {
	s.retired.Add(1) // sidecar is not a carrier
}
