// Package fwd checks the retirepin forwarding exemption: inside a
// reclamation-stack package, a function that is itself a retire-path entry
// point may forward raw retires — the pin obligation belongs to its callers.
package fwd

import "vettest/internal/core"

type rec struct{ v int }

// Reclaimer is a scheme whose Retire forwards to its per-thread handles.
type Reclaimer struct{ hs []core.ReclaimerHandle[rec] }

// Retire implements the scheme entry point by forwarding (exempt: the
// enclosing function is itself a retire-path method).
func (r *Reclaimer) Retire(tid int, x *rec) { r.hs[tid].Retire(x) }

// FlushRetired forwards a whole buffer (exempt for the same reason).
func (r *Reclaimer) FlushRetired(tid int, xs []*rec) {
	for _, x := range xs {
		r.hs[tid].Retire(x)
	}
}

// drain is not a retire-path entry point, so its raw retire is still
// checked.
func (r *Reclaimer) drain(tid int, x *rec) {
	r.hs[tid].Retire(x) // want `raw ReclaimerHandle\.Retire is not dominated`
}
