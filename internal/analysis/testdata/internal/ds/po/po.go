// Package po seeds hazard-pointer ordering violations for the protectorder
// analyzer.
package po

import (
	"sync/atomic"

	"vettest/internal/core"
)

type node struct {
	next atomic.Pointer[node]
	key  int64
}

type list struct {
	head atomic.Pointer[node]
}

func good(l *list, h *core.ThreadHandle[node]) int64 {
	for {
		n := l.head.Load()
		if n == nil {
			return 0
		}
		if !h.Protect(n) || l.head.Load() != n {
			h.Unprotect(n)
			continue
		}
		return n.key
	}
}

func badNoValidate(l *list, h *core.ThreadHandle[node]) int64 {
	n := l.head.Load()
	if n == nil {
		return 0
	}
	h.Protect(n) // want `n is dereferenced at line \d+ without re-validation after Protect`
	return n.key
}

func badUseAfterUnprotect(l *list, h *core.ThreadHandle[node]) int64 {
	n := l.head.Load()
	if n == nil {
		return 0
	}
	if !h.Protect(n) || l.head.Load() != n {
		h.Unprotect(n)
		return 0
	}
	k := n.key
	h.Unprotect(n)
	return k + n.key // want `n is dereferenced after Unprotect`
}

func reprotect(l *list, h *core.ThreadHandle[node]) int64 {
	n := l.head.Load()
	if n == nil {
		return 0
	}
	if !h.Protect(n) || l.head.Load() != n {
		h.Unprotect(n)
		return 0
	}
	h.Unprotect(n)
	if !h.Protect(n) || l.head.Load() != n {
		h.Unprotect(n)
		return 0
	}
	return n.key
}

func loopRescan(l *list, h *core.ThreadHandle[node], ns []*node) {
	for _, n := range ns {
		if !h.Protect(n) || l.head.Load() != n {
			h.Unprotect(n)
			continue
		}
		_ = n.key
		h.Unprotect(n)
	}
}

func validateSeparately(l *list, h *core.ThreadHandle[node]) int64 {
	n := l.head.Load()
	if n == nil {
		return 0
	}
	if !h.Protect(n) {
		return 0
	}
	if l.head.Load() != n {
		h.Unprotect(n)
		return 0
	}
	return n.key
}
