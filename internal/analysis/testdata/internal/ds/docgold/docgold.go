// Package docgold seeds missing-doc violations for the exporteddoc analyzer.
package docgold

// Documented is documented.
type Documented struct{}

type Undocumented struct{} // want `exported type Undocumented has no doc comment`

// M is documented.
func (Documented) M() {}

func (Documented) Bare() {} // want `exported method Documented\.Bare has no doc comment`

func (u Undocumented) ok() { _ = u } // unexported method: not API surface

type hidden struct{}

func (hidden) Exposed() {} // method on an unexported type: not API surface

// Exported is documented.
func Exported() {}

func AlsoExported() {} // want `exported function AlsoExported has no doc comment`

func helper() {} // unexported: fine

// Limits are documented as a group, which covers every member.
const (
	MaxThings = 8
	MinThings = 1
)

const Loose = /* want `exported const Loose has no doc comment` */ 2

var (
	// V1 is documented.
	V1 int

	V2/* want `exported var V2 has no doc comment` */ int
)

// Box is a documented generic type.
type Box[T any] struct{ v T }

func (b *Box[T]) Get() T { return b.v } // want `exported method Box\.Get has no doc comment`
