// Package stub is a data-structure-layer handle API stub (path under
// internal/ds so the analyzers treat it as DS code): a partitioned wrapper
// whose handles release through a method rather than through the manager.
package stub

// PartitionedHandle is a slot-backed per-thread handle.
type PartitionedHandle struct{ _ int }

// Release returns the handle's slot.
func (h *PartitionedHandle) Release() {}

// Partitioned is a sharded structure handing out slot-backed handles.
type Partitioned struct{ _ int }

// AcquireHandle binds a worker slot.
func (p *Partitioned) AcquireHandle() *PartitionedHandle { return &PartitionedHandle{} }
