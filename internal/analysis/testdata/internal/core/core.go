// Package core is a stub of the real repro/internal/core API surface, just
// enough for the analyzer golden packages to type-check. The package path
// ends in internal/core so the analyzers' path-suffix matching treats these
// declarations exactly like the real stack's.
package core

// PadBytes mirrors the real cache-line pad constant.
const PadBytes = 64

// Counter is the single-writer stat cell the singlewriter analyzer demands.
type Counter struct{ v int64 }

// Load returns the cell value.
func (c *Counter) Load() int64 { return c.v }

// Store sets the cell value.
func (c *Counter) Store(v int64) { c.v = v }

// Inc bumps the cell by one.
func (c *Counter) Inc() { c.v++ }

// Reclaimer is the scheme-level reclamation interface (raw Retire requires a
// pin).
type Reclaimer[T any] interface {
	LeaveQstate(tid int) bool
	EnterQstate(tid int)
	Retire(tid int, rec *T)
	Protect(tid int, rec *T) bool
	Unprotect(tid int, rec *T)
}

// BlockReclaimer is the block-granularity retire interface.
type BlockReclaimer[T any] interface {
	RetireBlock(tid int, blk *T)
}

// RetirePinner is the explicit retire-window pin interface.
type RetirePinner interface {
	PinRetire(tid int)
	UnpinRetire(tid int)
}

// ReclaimerHandle is the per-thread fast-path view of a scheme (raw Retire,
// still requires a pin).
type ReclaimerHandle[T any] interface {
	LeaveQstate() bool
	EnterQstate()
	Retire(rec *T)
	Protect(rec *T) bool
	Unprotect(rec *T)
}

// RetireChain hands a chain of records to the scheme (raw, requires a pin).
func RetireChain[T any](r Reclaimer[T], tid int) {
	_ = r
	_ = tid
}

// RecordManager is the auto-pinning wrapper layer.
type RecordManager[T any] struct{ _ int }

// Retire auto-pins before handing the record to the scheme.
func (m *RecordManager[T]) Retire(tid int, rec *T) {}

// FlushRetired auto-pins before draining the retire buffer.
func (m *RecordManager[T]) FlushRetired(tid int) {}

// AcquireHandle binds a worker slot, blocking until one is free.
func (m *RecordManager[T]) AcquireHandle() *ThreadHandle[T] { return &ThreadHandle[T]{} }

// TryAcquireHandle binds a worker slot without blocking.
func (m *RecordManager[T]) TryAcquireHandle() (*ThreadHandle[T], bool) {
	return &ThreadHandle[T]{}, true
}

// ReleaseHandle returns a worker slot.
func (m *RecordManager[T]) ReleaseHandle(h *ThreadHandle[T]) {}

// ThreadHandle is the per-thread auto-pinning handle.
type ThreadHandle[T any] struct{ _ int }

// Retire auto-pins before handing the record to the scheme.
func (h *ThreadHandle[T]) Retire(rec *T) {}

// FlushRetired auto-pins before draining the retire buffer.
func (h *ThreadHandle[T]) FlushRetired() {}

// LeaveQstate announces the thread as active.
func (h *ThreadHandle[T]) LeaveQstate() bool { return true }

// EnterQstate announces the thread as quiescent.
func (h *ThreadHandle[T]) EnterQstate() {}

// Protect announces a hazard pointer for rec.
func (h *ThreadHandle[T]) Protect(rec *T) bool { return true }

// Unprotect withdraws the hazard announcement for rec.
func (h *ThreadHandle[T]) Unprotect(rec *T) {}

// Controller is the adaptive-runtime controller stub (its Step is the
// noclock root; the stub itself is clock-free).
type Controller struct{ steps int }

// Step advances the controller one decision epoch.
func (c *Controller) Step() { c.steps++ }
