// Package a seeds slot-lifecycle violations for the handlepair analyzer.
package a

import (
	"vettest/internal/core"
	"vettest/internal/ds/stub"
)

type node struct{ v int }

func leak(m *core.RecordManager[node]) {
	h := m.AcquireHandle() // want `does not reach ReleaseHandle`
	_ = h
}

func discarded(m *core.RecordManager[node]) {
	m.AcquireHandle() // want `result discarded`
}

func blank(m *core.RecordManager[node]) {
	_ = m.AcquireHandle() // want `result assigned to _`
}

func deferredRelease(m *core.RecordManager[node], n *node) {
	h := m.AcquireHandle()
	defer m.ReleaseHandle(h)
	h.Retire(n)
}

func explicitRelease(m *core.RecordManager[node], n *node) {
	h := m.AcquireHandle()
	h.Retire(n)
	m.ReleaseHandle(h)
}

func tryAcquire(m *core.RecordManager[node], n *node) {
	h, ok := m.TryAcquireHandle()
	if !ok {
		return
	}
	defer m.ReleaseHandle(h)
	h.Retire(n)
}

func tryAcquireLeak(m *core.RecordManager[node]) {
	h, ok := m.TryAcquireHandle() // want `does not reach ReleaseHandle`
	if !ok {
		return
	}
	_ = h
}

func deferInLoop(m *core.RecordManager[node], ns []*node) {
	for _, n := range ns {
		h := m.AcquireHandle() // want `deferred release of the AcquireHandle handle inside a loop`
		defer m.ReleaseHandle(h)
		h.Retire(n)
	}
}

func perIterationRelease(m *core.RecordManager[node], ns []*node) {
	for _, n := range ns {
		h := m.AcquireHandle()
		h.Retire(n)
		m.ReleaseHandle(h)
	}
}

func escapesByReturn(m *core.RecordManager[node]) *core.ThreadHandle[node] {
	h := m.AcquireHandle()
	return h // obligation transfers to the caller
}

type holder struct{ h *core.ThreadHandle[node] }

func escapesByStore(m *core.RecordManager[node], s *holder) {
	s.h = m.AcquireHandle() // stored: obligation moves with the handle
}

func escapesByField(m *core.RecordManager[node], s *holder) {
	h := m.AcquireHandle()
	s.h = h
}

func methodValueRelease(p *stub.Partitioned) {
	h := p.AcquireHandle()
	rel := h.Release // bound method value carries the release
	defer rel()
}

func receiverRelease(p *stub.Partitioned) {
	h := p.AcquireHandle()
	defer h.Release()
}

func stubLeak(p *stub.Partitioned) {
	h := p.AcquireHandle() // want `does not reach ReleaseHandle`
	_ = h
}

func closureAcquire(m *core.RecordManager[node]) func() {
	return func() {
		h := m.AcquireHandle() // want `does not reach ReleaseHandle`
		_ = h
	}
}

func closureRelease(m *core.RecordManager[node]) func() {
	h := m.AcquireHandle()
	return func() {
		m.ReleaseHandle(h) // release through the closure the function returns
	}
}
