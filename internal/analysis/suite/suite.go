// Package suite assembles the repository's full analyzer set — the six
// reclamation-contract checks cmd/reclaimvet runs as one multichecker. The
// set is defined here (not in the command) so tests and future drivers share
// a single source of truth for which contracts are statically enforced.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/exporteddoc"
	"repro/internal/analysis/passes/handlepair"
	"repro/internal/analysis/passes/noclock"
	"repro/internal/analysis/passes/protectorder"
	"repro/internal/analysis/passes/retirepin"
	"repro/internal/analysis/passes/singlewriter"
)

// All returns the full analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		retirepin.Analyzer,
		handlepair.Analyzer,
		singlewriter.Analyzer,
		protectorder.Analyzer,
		noclock.Analyzer,
		exporteddoc.Analyzer,
	}
}

// Known reports whether name is an analyzer in the suite (used to validate
// //lint:allow markers).
func Known(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}
