package analysis

import (
	"fmt"
	"sort"
)

// RunUnit applies analyzers to one unit and returns the surviving
// diagnostics: findings outside the unit's report-owned files are dropped,
// findings excused by a reasoned //lint:allow marker are suppressed, and the
// marker hygiene diagnostics (bare markers, missing reasons, unknown
// analyzer names, markers that suppressed nothing) are appended. known
// validates marker analyzer names; nil accepts any (the multichecker passes
// its full suite, the golden-test runner passes just the analyzer under
// test).
func RunUnit(u *Unit, analyzers []*Analyzer, known func(string) bool) ([]Diagnostic, error) {
	markers, diags := collectAllows(u, known)

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		var raw []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    u.Files,
			Pkg:      u.Pkg,
			Info:     u.Info,
			report: func(d Diagnostic) {
				d.Analyzer = a.Name
				raw = append(raw, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	raws:
		for _, d := range raw {
			pos := u.Fset.Position(d.Pos)
			if !ownsFile(u, pos.Filename) {
				continue
			}
			for _, m := range markers {
				if m.suppresses(a.Name, pos) {
					m.used = true
					continue raws
				}
			}
			diags = append(diags, d)
		}
	}

	// A reasoned marker whose analyzer ran and suppressed nothing is stale:
	// either the contract violation it excused is gone (delete the marker) or
	// the marker is on the wrong line (move it). Only judged when its
	// analyzer actually ran, so running a single analyzer over a file with
	// markers for others stays quiet.
	for _, m := range markers {
		if !m.used && ran[m.analyzer] {
			diags = append(diags, Diagnostic{
				Pos:      m.pos,
				Analyzer: markerDiag,
				Message:  fmt.Sprintf("//lint:allow %s suppresses nothing; delete the stale marker", m.analyzer),
			})
		}
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ownsFile reports whether filename is one of the unit's report-owned files.
func ownsFile(u *Unit, filename string) bool {
	for f := range u.ReportFiles {
		if u.Fset.Position(f.Pos()).Filename == filename {
			return true
		}
	}
	return false
}
