// Package exporteddoc is cmd/doclint folded into the multichecker (one
// static-analysis binary for CI): exported identifiers in the API-surface
// packages must carry doc comments, because godoc there is the contract
// users program against — an undocumented exported symbol is drift, not
// style. Checked packages: internal/core, internal/recordmgr,
// internal/kvservice, internal/kvwire and every data structure under
// internal/ds/...; checked declarations: package-level types, functions,
// methods on exported receivers, and each exported name in const/var
// declarations (a doc comment on the enclosing declaration group covers its
// members, matching godoc's rendering). Test files are exempt.
package exporteddoc

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags undocumented exported symbols in API-surface packages.
var Analyzer = &analysis.Analyzer{
	Name: "exporteddoc",
	Doc:  "exported symbols in API-surface packages must have doc comments",
	Run:  run,
}

// inScope lists the API-surface packages whose godoc is the user contract.
func inScope(pkgPath string) bool {
	return analysis.PathHasSuffix(pkgPath, "internal/core") ||
		analysis.PathHasSuffix(pkgPath, "internal/recordmgr") ||
		analysis.PathHasSuffix(pkgPath, "internal/kvservice") ||
		analysis.PathHasSuffix(pkgPath, "internal/kvwire") ||
		analysis.PathContains(pkgPath, "internal/ds")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				lintFunc(pass, d)
			case *ast.GenDecl:
				lintGen(pass, d)
			}
		}
	}
	return nil
}

// lintFunc checks a function or method: exported name, and for methods an
// exported receiver type (methods on unexported types are not API surface).
func lintFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	name := d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		kind = "method"
		name = recv + "." + name
	}
	pass.Report(d.Pos(), "exported %s %s has no doc comment", kind, name)
}

// lintGen checks a type/const/var declaration. godoc attaches a group's doc
// comment to all its members, so a documented group excuses undocumented
// specs inside it; an undocumented group requires per-spec comments.
func lintGen(pass *analysis.Pass, d *ast.GenDecl) {
	switch d.Tok.String() {
	case "type":
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
				pass.Report(ts.Pos(), "exported type %s has no doc comment", ts.Name.Name)
			}
		}
	case "const", "var":
		if d.Doc != nil {
			return
		}
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			if vs.Doc != nil || vs.Comment != nil {
				continue
			}
			for _, name := range vs.Names {
				if name.IsExported() {
					pass.Report(name.Pos(), "exported %s %s has no doc comment", d.Tok.String(), name.Name)
				}
			}
		}
	}
}

// receiverName unwraps a method receiver type expression to its type name,
// looking through pointers and generic instantiations ([T any] receivers
// parse as IndexExpr/IndexListExpr).
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
