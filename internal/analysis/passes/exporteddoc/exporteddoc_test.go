package exporteddoc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/exporteddoc"
)

// TestExportedDoc checks the seeded missing-doc violations, including the
// group-doc exemption and generic-receiver methods.
func TestExportedDoc(t *testing.T) {
	analysistest.Run(t, analysistest.Dir(), exporteddoc.Analyzer, "./internal/ds/docgold")
}
