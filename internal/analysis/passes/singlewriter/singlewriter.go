// Package singlewriter is the typed replacement for the old
// internal/core/hotpathguard_test.go grep guard (PR 4): per-thread
// statistics counters in the Record Manager stack must be single-writer
// core.Counter cells, never sync/atomic values — an atomic Add is a
// LOCK-prefixed read-modify-write paid several times per data-structure
// operation, and the per-thread stat carriers are written only by their
// owning tid (with a happens-before edge to any quiescent drainer), so the
// RMW buys nothing.
//
// Two rules, both scoped to the known per-thread carrier structs (thread,
// threadStats, poolThread, bumpThread, heapThread, retireBuf,
// asyncCounters) in the hot-path packages (internal/{core,pool,arena},
// internal/reclaim/..., internal/ds/...):
//
//  1. declaration: a field named like a stat counter (retired, freed,
//     scans, ...) must not be declared with a sync/atomic type;
//  2. use: no atomic read-modify-write — neither the method forms
//     (Add/Swap/CompareAndSwap/...) nor the function forms
//     (atomic.AddInt64(&t.field, ...)) — may target a stat field of a
//     carrier struct.
//
// Multi-writer synchronisation words (epoch announcements, occupancy
// summaries, shared-stack heads, neutralization state) are not stat
// counters: their fields are outside the guarded name set and stay
// legitimately atomic.
package singlewriter

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer enforces the single-writer core.Counter discipline.
var Analyzer = &analysis.Analyzer{
	Name: "singlewriter",
	Doc:  "per-thread stat counters must be core.Counter cells; no atomic RMW may target a per-thread carrier's stat field",
	Run:  run,
}

// carrierNames are the per-thread state structs the discipline covers.
var carrierNames = map[string]bool{
	"thread": true, "threadStats": true, "poolThread": true,
	"bumpThread": true, "heapThread": true, "retireBuf": true,
	"asyncCounters": true,
}

// statNames are the per-thread statistics fields (the old guard's name set).
var statNames = map[string]bool{
	"retired": true, "freed": true, "scans": true, "epochAdvances": true,
	"grace": true, "neutralizations": true, "selfNeutralized": true,
	"reused": true, "fromAllocator": true, "toShared": true,
	"fromShared": true, "allocated": true, "deallocated": true,
	"slabs": true, "pending": true, "enqueued": true, "drained": true,
	"handoff": true, "restarts": true, "unlinks": true, "resizes": true,
	"dummies": true, "helps": true, "recov": true,
}

// rmwMethods are the read-modify-write methods of the sync/atomic types.
var rmwMethods = map[string]bool{
	"Add": true, "Swap": true, "CompareAndSwap": true, "Or": true, "And": true,
}

// rmwFuncs are the function-form RMWs of package sync/atomic.
var rmwFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true,
	"AddUintptr": true, "SwapInt32": true, "SwapInt64": true,
	"SwapUint32": true, "SwapUint64": true, "SwapUintptr": true,
	"SwapPointer": true, "CompareAndSwapInt32": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true,
	"CompareAndSwapPointer": true, "OrInt32": true, "OrInt64": true,
	"OrUint32": true, "OrUint64": true, "AndInt32": true, "AndInt64": true,
	"AndUint32": true, "AndUint64": true,
}

// inScope reports whether the package is part of the guarded hot-path stack.
func inScope(pkgPath string) bool {
	return analysis.PathHasSuffix(pkgPath, "internal/core") ||
		analysis.PathHasSuffix(pkgPath, "internal/pool") ||
		analysis.PathHasSuffix(pkgPath, "internal/arena") ||
		analysis.PathContains(pkgPath, "internal/reclaim") ||
		analysis.PathContains(pkgPath, "internal/ds")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				checkDecl(pass, n)
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDecl applies rule 1 to a carrier struct declaration.
func checkDecl(pass *analysis.Pass, ts *ast.TypeSpec) {
	if !carrierNames[ts.Name.Name] {
		return
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		t := pass.Info.Types[field.Type].Type
		if t == nil || !isAtomicType(t) {
			continue
		}
		for _, name := range field.Names {
			if statNames[name.Name] {
				pass.Report(name.Pos(),
					"per-thread stat counter %s.%s declared as %s: use core.Counter (single-writer cell; an atomic RMW is a LOCK-prefixed hot-path tax)",
					ts.Name.Name, name.Name, types.TypeString(t, nil))
			}
		}
	}
}

// checkCall applies rule 2 to method- and function-form RMWs.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Function form: atomic.AddInt64(&carrier.field, ...).
	if f := analysis.CalleeOf(pass.Info, call); f != nil &&
		analysis.FuncPkgPath(f) == "sync/atomic" && rmwFuncs[f.Name()] && len(call.Args) > 0 {
		if carrier, field, ok := carrierStatField(pass, addrTarget(call.Args[0])); ok {
			pass.Report(call.Pos(),
				"atomic.%s targets per-thread stat field %s.%s: single-writer core.Counter cells only (no RMW on the hot path)",
				f.Name(), carrier, field)
		}
		return
	}
	// Method form: carrier.field.Add(...).
	if !rmwMethods[sel.Sel.Name] {
		return
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if m := analysis.CalleeOf(pass.Info, call); m == nil || analysis.FuncPkgPath(m) != "sync/atomic" {
		return
	}
	if carrier, field, ok := carrierStatField(pass, recv); ok {
		pass.Report(call.Pos(),
			"%s.%s.%s is an atomic RMW on a per-thread stat field: use core.Counter (single-writer cell)",
			carrier, field, sel.Sel.Name)
	}
}

// addrTarget unwraps &expr to expr (the usual atomic function-form idiom).
func addrTarget(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok {
		return u.X
	}
	return ast.Unparen(e)
}

// carrierStatField decides whether e selects a guarded stat field of a
// carrier struct, returning the carrier and field names.
func carrierStatField(pass *analysis.Pass, e ast.Expr) (carrier, field string, ok bool) {
	sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !isSel || !statNames[sel.Sel.Name] {
		return "", "", false
	}
	t := pass.Info.Types[sel.X].Type
	if t == nil {
		return "", "", false
	}
	n := analysis.NamedOf(t)
	if n == nil || !carrierNames[n.Obj().Name()] {
		return "", "", false
	}
	return n.Obj().Name(), sel.Sel.Name, true
}

// isAtomicType reports whether t (or its element) is a sync/atomic type.
func isAtomicType(t types.Type) bool {
	n := analysis.NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}
