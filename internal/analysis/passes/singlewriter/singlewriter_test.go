package singlewriter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/singlewriter"
)

// TestSingleWriter checks the seeded stat-cell violations — the port of the
// old internal/core/hotpathguard_test.go seeded-regression self-test.
func TestSingleWriter(t *testing.T) {
	analysistest.Run(t, analysistest.Dir(), singlewriter.Analyzer, "./internal/reclaim/swgold")
}
