// Package noclock enforces the fake-clock discipline from PR 7: the
// adaptive controller's Step path is a pure function of its inputs — tests
// drive it step-by-step with synthetic signals and assert exact
// trajectories, and the bench harness replays recorded signal sequences —
// so nothing reachable from core.Controller.Step may read the wall clock.
// A time.Now in a Step callee silently turns every controller unit test
// into a flake and every recorded trajectory into a one-off.
//
// Two checks:
//
//  1. in internal/core, any function reachable from Controller.Step through
//     the package's static call graph must not call time.Now, time.Since,
//     time.Until, time.Sleep, time.After, time.Tick, time.NewTimer or
//     time.NewTicker (the controller's run loop, which owns the ticker and
//     calls Step, is the boundary — it is not reachable *from* Step);
//  2. any _test.go file that drives Controller.Step directly must not call
//     time.Now or time.Since: a Step-driven test that reads the wall clock
//     is timing-dependent by construction.
package noclock

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer bans wall-clock reads from Step paths and Step-driven tests.
var Analyzer = &analysis.Analyzer{
	Name: "noclock",
	Doc:  "no wall clock in core.Controller Step paths or Step-driven tests (fake-clock discipline)",
	Run:  run,
}

// bannedInStep are the time package entry points banned on the Step path.
var bannedInStep = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// bannedInTests are the wall-clock reads banned in Step-driven test files.
var bannedInTests = map[string]bool{"Now": true, "Since": true}

func run(pass *analysis.Pass) error {
	if analysis.PathHasSuffix(pass.Pkg.Path(), "internal/core") {
		checkStepPaths(pass)
	}
	checkStepTests(pass)
	return nil
}

// timeCall returns the name of the time-package function call c invokes, if
// any.
func timeCall(pass *analysis.Pass, c *ast.CallExpr) (string, bool) {
	f := analysis.CalleeOf(pass.Info, c)
	if f == nil || analysis.FuncPkgPath(f) != "time" {
		return "", false
	}
	return f.Name(), true
}

// checkStepPaths builds the intra-package call graph and walks it from
// Controller.Step, flagging banned time calls in every reachable function.
func checkStepPaths(pass *analysis.Pass) {
	type timeUse struct {
		pos  ast.Node
		name string
	}
	callees := map[*types.Func][]*types.Func{}
	timeUses := map[*types.Func][]timeUse{}
	var roots []*types.Func

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			def, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if fd.Name.Name == "Step" && analysis.RecvTypeName(def) == "Controller" {
				roots = append(roots, def)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := timeCall(pass, call); ok && bannedInStep[name] {
					timeUses[def] = append(timeUses[def], timeUse{call, name})
					return true
				}
				if callee := analysis.CalleeOf(pass.Info, call); callee != nil &&
					callee.Pkg() == pass.Pkg {
					callees[def] = append(callees[def], callee)
				}
				return true
			})
		}
	}

	reachable := map[*types.Func]bool{}
	var visit func(f *types.Func)
	visit = func(f *types.Func) {
		if reachable[f] {
			return
		}
		reachable[f] = true
		for _, c := range callees[f] {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	for fn, uses := range timeUses {
		if !reachable[fn] {
			continue
		}
		for _, u := range uses {
			name := fn.Name()
			if recv := analysis.RecvTypeName(fn); recv != "" {
				name = recv + "." + name
			}
			pass.Report(u.pos.Pos(),
				"time.%s in %s, which is reachable from Controller.Step: Step must be a pure function of its inputs (fake-clock discipline; take timestamps outside and pass them in)", u.name, name)
		}
	}
}

// checkStepTests flags wall-clock reads in test files that drive
// Controller.Step directly.
func checkStepTests(pass *analysis.Pass) {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(filename, "_test.go") {
			continue
		}
		drivesStep := false
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := analysis.CalleeOf(pass.Info, call); fn != nil &&
				fn.Name() == "Step" && analysis.RecvTypeName(fn) == "Controller" &&
				analysis.PathHasSuffix(analysis.FuncPkgPath(fn), "internal/core") {
				drivesStep = true
			}
			return true
		})
		if !drivesStep {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := timeCall(pass, call); ok && bannedInTests[name] {
				pass.Report(call.Pos(),
					"time.%s in a test file that drives Controller.Step: Step-driven tests must be wall-clock free (assert on step counts and synthetic signals, not elapsed time)", name)
			}
			return true
		})
	}
}
