package noclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/noclock"
)

// TestNoClock checks the seeded wall-clock reads on the Step path and in
// Step-driving test files (the rule is per file: the clock_other_test.go
// golden reads the clock legitimately).
func TestNoClock(t *testing.T) {
	analysistest.Run(t, analysistest.Dir(), noclock.Analyzer, "./noclock/...")
}
