package handlepair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/handlepair"
)

// TestHandlePair checks the seeded slot-lifecycle violations: leaks,
// discarded results, defer-in-loop starvation, escapes, method-value and
// receiver-form releases.
func TestHandlePair(t *testing.T) {
	analysistest.Run(t, analysistest.Dir(), handlepair.Analyzer, "./handlepair/...")
}
