// Package handlepair proves the slot-lifecycle half of the PR 5 contract:
// every AcquireHandle/TryAcquireHandle must be paired with a ReleaseHandle.
// A leaked handle is a leaked worker slot — the registry's capacity is
// finite, so leaks starve later acquirers (the PR 7 idle-connection
// starvation class), and the slot's announcement stays scanner-visible
// forever, pinning reclamation for everyone.
//
// The analyzer is an escape-style check, not a full data-flow pass: the
// acquired handle must either reach a ReleaseHandle/Release call in the
// enclosing function (directly, deferred, or through a bound method value)
// or demonstrably leave the function — returned, stored into a structure,
// sent on a channel, or passed to another function, which transfers the
// release obligation to the receiver. Two patterns are flagged outright:
// discarding the result (the slot can never be released) and a deferred
// release inside a loop (the deferred calls pile up until function exit, so
// a long-lived loop holds every slot it ever acquired — the starvation bug
// with extra steps).
package handlepair

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags acquired handles that cannot reach a release.
var Analyzer = &analysis.Analyzer{
	Name: "handlepair",
	Doc:  "AcquireHandle/TryAcquireHandle must reach ReleaseHandle on every non-panic path",
	Run:  run,
}

// acquireNames and releaseNames delimit the slot lifecycle API (core's
// RecordManager and the data structures' wrappers share the names).
var (
	acquireNames = map[string]bool{"AcquireHandle": true, "TryAcquireHandle": true}
	releaseNames = map[string]bool{"ReleaseHandle": true, "Release": true}
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// stackFunc reports whether call invokes a reclamation-stack method named in
// names (declared under internal/core or internal/ds/...).
func stackFunc(pass *analysis.Pass, call *ast.CallExpr, names map[string]bool) (*types.Func, bool) {
	f := analysis.CalleeOf(pass.Info, call)
	if f == nil || !names[f.Name()] {
		return nil, false
	}
	p := analysis.FuncPkgPath(f)
	if !analysis.PathHasSuffix(p, "internal/core") && !analysis.PathContains(p, "internal/ds") {
		return nil, false
	}
	return f, true
}

// checkFunc inspects one function body. Function literals are part of the
// body scan: a release inside a closure the function keeps counts as a
// release (servers hand connections their own cleanup closures), and an
// acquire inside a closure is checked against that closure's own body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Collect every acquire call with its enclosing function-like body.
	type acquire struct {
		call  *ast.CallExpr
		fn    *types.Func
		body  *ast.BlockStmt
		loops []ast.Stmt // enclosing for/range statements, innermost last
	}
	var acquires []acquire

	var visit func(n ast.Node, body *ast.BlockStmt, loops []ast.Stmt)
	visit = func(n ast.Node, body *ast.BlockStmt, loops []ast.Stmt) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				visit(m.Body, m.Body, nil)
				return false
			case *ast.ForStmt:
				visit(m.Body, body, append(loops, m))
				return false
			case *ast.RangeStmt:
				visit(m.Body, body, append(loops, m))
				return false
			case *ast.CallExpr:
				if f, ok := stackFunc(pass, m, acquireNames); ok {
					acquires = append(acquires, acquire{call: m, fn: f, body: body, loops: append([]ast.Stmt{}, loops...)})
				}
			}
			return true
		})
	}
	visit(fd.Body, fd.Body, nil)

	for _, acq := range acquires {
		checkAcquire(pass, acq.call, acq.fn, acq.body, acq.loops)
	}
}

// checkAcquire validates one acquire call site.
func checkAcquire(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func, body *ast.BlockStmt, loops []ast.Stmt) {
	// Find how the result is bound by locating the acquire's parent
	// statement in the body.
	var handleVar *types.Var
	bound := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bound {
			return false
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			if n.X == call {
				bound = true
				pass.Report(call.Pos(),
					"%s result discarded: the acquired slot can never be released (slot leak)", fn.Name())
				return false
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && n.Rhs[0] == call && len(n.Lhs) >= 1 {
				bound = true
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					if id.Name == "_" {
						pass.Report(call.Pos(),
							"%s result assigned to _: the acquired slot can never be released (slot leak)", fn.Name())
						return false
					}
					if v, ok := pass.Info.Defs[id].(*types.Var); ok {
						handleVar = v
					} else if v, ok := pass.Info.Uses[id].(*types.Var); ok {
						handleVar = v
					}
				}
				// Non-identifier targets (field, index) are stores — the
				// handle escapes and the obligation moves with it.
				return false
			}
		case *ast.ValueSpec:
			for i, val := range n.Values {
				if val == call && i < len(n.Names) {
					bound = true
					if v, ok := pass.Info.Defs[n.Names[i]].(*types.Var); ok {
						handleVar = v
					}
					return false
				}
			}
		}
		return true
	})
	if !bound || handleVar == nil {
		// Result used directly (returned, passed as an argument, stored):
		// the handle escapes with its obligation.
		return
	}

	released, escaped := false, false
	deferRelease, deferReleaseInLoop := false, false

	var scan func(n ast.Node, inDefer bool, loopDepth int)
	scan = func(n ast.Node, inDefer bool, loopDepth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				scan(m.Call, true, loopDepth)
				return false
			case *ast.ForStmt:
				scan(m.Body, inDefer, loopDepth+1)
				return false
			case *ast.RangeStmt:
				scan(m.Body, inDefer, loopDepth+1)
				return false
			case *ast.CallExpr:
				if _, ok := stackFunc(pass, m, releaseNames); ok {
					// Release with the handle as argument (ReleaseHandle(h))
					// or as receiver (h.Release()).
					if usesVar(pass, m, handleVar) {
						released = true
						if inDefer {
							deferRelease = true
							if loopDepth > 0 {
								deferReleaseInLoop = true
							}
						}
						return false
					}
				}
				// The handle passed to any other call transfers the
				// obligation (helpers that release, maps that store, ...).
				for _, a := range m.Args {
					if isVar(pass, a, handleVar) {
						escaped = true
					}
				}
			case *ast.SelectorExpr:
				// Method value bound to the handle (rel := h.Release;
				// defer rel()): the release reaches the handle through the
				// bound receiver.
				if isVar(pass, m.X, handleVar) && releaseNames[m.Sel.Name] {
					if _, isCallFun := pass.Info.Selections[m]; isCallFun {
						released = true
					}
				}
			case *ast.ReturnStmt:
				for _, r := range m.Results {
					if isVar(pass, r, handleVar) {
						escaped = true
					}
				}
			case *ast.AssignStmt:
				// Stored into a field/index/map or reassigned outward.
				for i, rhs := range m.Rhs {
					if isVar(pass, rhs, handleVar) && i < len(m.Lhs) {
						if _, isIdent := m.Lhs[i].(*ast.Ident); !isIdent {
							escaped = true
						}
					}
				}
			case *ast.SendStmt:
				if isVar(pass, m.Value, handleVar) {
					escaped = true
				}
			case *ast.CompositeLit:
				for _, el := range m.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if isVar(pass, el, handleVar) {
						escaped = true
					}
				}
			}
			return true
		})
	}
	scan(body, false, 0)

	acquireInLoop := len(loops) > 0
	switch {
	case deferReleaseInLoop, deferRelease && acquireInLoop:
		pass.Report(call.Pos(),
			"deferred release of the %s handle inside a loop runs only at function exit: every iteration holds another slot (slot starvation); release explicitly per iteration", fn.Name())
	case !released && !escaped:
		pass.Report(call.Pos(),
			"handle from %s does not reach ReleaseHandle in this function and does not escape: the slot leaks and its announcement stays scanner-visible", fn.Name())
	}
}

// isVar reports whether e is (parenthesised) use of v.
func isVar(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.Info.Uses[id] == v || pass.Info.Defs[id] == v
}

// usesVar reports whether v appears anywhere inside n (receiver or
// argument).
func usesVar(pass *analysis.Pass, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && (pass.Info.Uses[id] == v || pass.Info.Defs[id] == v) {
			found = true
		}
		return !found
	})
	return found
}
