// Package retirepin is the static form of the PR 3 quiescent-retire panic:
// a raw scheme-level Retire (Reclaimer.Retire, ReclaimerHandle.Retire,
// BlockReclaimer.RetireBlock, core.RetireChain) issued from a quiescent
// context races the epoch advance — the retirer's observed epoch can go
// arbitrarily stale before its records land in a limbo bag, so an advance
// winner may free them while the retirer still holds the chain. The runtime
// contract makes the epoch schemes panic on an unpinned Retire; this
// analyzer proves the absence of the panic at build time by requiring every
// raw retire call site to be dominated by LeaveQstate or PinRetire on all
// paths from the enclosing function's entry.
//
// The auto-pinning wrappers — core.RecordManager.Retire/FlushRetired and
// core.ThreadHandle.Retire/FlushRetired — take the pin themselves when the
// thread is quiescent and are therefore exempt: calling through them is the
// recommended fix for any diagnostic this analyzer reports. The dominance
// walk is structural (statement order, if/else joins, loops that may run
// zero times), not a full SSA pass: calls reached through function literals
// inherit the pin state at their creation point, deferred and spawned calls
// are analysed as unpinned, and an EnterQstate or UnpinRetire kills the
// dominating pin.
package retirepin

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer flags raw scheme retires not dominated by a pin.
var Analyzer = &analysis.Analyzer{
	Name: "retirepin",
	Doc:  "raw scheme Retire/RetireBlock must be dominated by LeaveQstate or PinRetire (quiescent-retire contract)",
	Run:  run,
}

// retireNames are the flagged entry points into a scheme's retire path.
var retireNames = map[string]bool{"Retire": true, "RetireBlock": true, "FlushRetired": true, "RetireChain": true}

// pinNames establish an active announcement; unpinNames withdraw it.
var (
	pinNames   = map[string]bool{"LeaveQstate": true, "PinRetire": true}
	unpinNames = map[string]bool{"EnterQstate": true, "UnpinRetire": true}
)

// autoPinRecv are the receiver types whose Retire/FlushRetired pin
// internally (the wrappers data structures are supposed to use).
var autoPinRecv = map[string]bool{"RecordManager": true, "ThreadHandle": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if forwarding(pass, fd) {
				continue
			}
			w := &walker{pass: pass}
			w.stmts(fd.Body.List, false)
		}
	}
	return nil
}

// forwarding reports whether fd is itself a retire-path entry point of the
// reclamation stack (core.RetireChain, a scheme's Reclaimer.Retire
// forwarding to its handle, ThreadHandle.Retire's fast path, ...). Raw
// retire calls inside such a function are forwarding edges: the pin
// obligation belongs to the function's own callers, which the analyzer
// checks at their sites — the same obligation-transfer reasoning handlepair
// applies to escaping handles.
func forwarding(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if !retireNames[fd.Name.Name] {
		return false
	}
	p := pass.Pkg.Path()
	return analysis.PathHasSuffix(p, "internal/core") ||
		analysis.PathContains(p, "internal/reclaim") ||
		analysis.PathContains(p, "internal/faultinject")
}

// inStack reports whether the called function belongs to the reclamation
// stack (core's interfaces and helpers, or a concrete scheme package).
func inStack(pass *analysis.Pass, call *ast.CallExpr) (fn string, recv string, ok bool) {
	f := analysis.CalleeOf(pass.Info, call)
	if f == nil {
		return "", "", false
	}
	p := analysis.FuncPkgPath(f)
	if !analysis.PathHasSuffix(p, "internal/core") && !analysis.PathContains(p, "internal/reclaim") &&
		!analysis.PathContains(p, "internal/faultinject") {
		return "", "", false
	}
	return f.Name(), analysis.RecvTypeName(f), true
}

// walker performs the structural dominance walk. pinned means "every path
// from the function entry to here passed a pin that has not been withdrawn".
type walker struct {
	pass *analysis.Pass
}

// stmts walks a statement list with the given entry pin state and returns
// the exit state.
func (w *walker) stmts(list []ast.Stmt, pinned bool) bool {
	for _, s := range list {
		pinned = w.stmt(s, pinned)
	}
	return pinned
}

func (w *walker) stmt(s ast.Stmt, pinned bool) bool {
	switch s := s.(type) {
	case nil:
		return pinned
	case *ast.BlockStmt:
		return w.stmts(s.List, pinned)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, pinned)
	case *ast.IfStmt:
		pinned = w.stmt(s.Init, pinned)
		pinned = w.expr(s.Cond, pinned)
		thenOut := w.stmts(s.Body.List, pinned)
		if analysis.Terminates(s.Body.List) {
			thenOut = true // vacuous: control never joins from this arm
		}
		elseOut := pinned
		if s.Else != nil {
			elseOut = w.stmt(s.Else, pinned)
			if b, ok := s.Else.(*ast.BlockStmt); ok && analysis.Terminates(b.List) {
				elseOut = true
			}
		}
		return thenOut && elseOut
	case *ast.ForStmt:
		pinned = w.stmt(s.Init, pinned)
		pinned = w.expr(s.Cond, pinned)
		bodyOut := w.stmts(s.Body.List, pinned)
		w.stmt(s.Post, bodyOut)
		return pinned && bodyOut // the body may run zero times
	case *ast.RangeStmt:
		pinned = w.expr(s.X, pinned)
		bodyOut := w.stmts(s.Body.List, pinned)
		return pinned && bodyOut
	case *ast.SwitchStmt:
		pinned = w.stmt(s.Init, pinned)
		pinned = w.expr(s.Tag, pinned)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, pinned)
			}
		}
		return pinned // conservative: pins inside cases do not dominate the join
	case *ast.TypeSwitchStmt:
		pinned = w.stmt(s.Init, pinned)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, pinned)
			}
		}
		return pinned
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, pinned)
			}
		}
		return pinned
	case *ast.DeferStmt:
		// A deferred call runs at function exit, where the pin state is
		// unknowable; analyse it as unpinned. Crucially a deferred unpin
		// (defer UnpinRetire) must not clear the current state.
		w.checkCalls(s.Call, false)
		return pinned
	case *ast.GoStmt:
		// A spawned goroutine starts with no announcement of its own.
		w.checkCalls(s.Call, false)
		return pinned
	default:
		// Expression-bearing statements: assignments, expression statements,
		// returns, sends, declarations.
		var exprs []ast.Expr
		switch s := s.(type) {
		case *ast.ExprStmt:
			exprs = []ast.Expr{s.X}
		case *ast.AssignStmt:
			exprs = append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
		case *ast.ReturnStmt:
			exprs = s.Results
		case *ast.SendStmt:
			exprs = []ast.Expr{s.Chan, s.Value}
		case *ast.IncDecStmt:
			exprs = []ast.Expr{s.X}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						exprs = append(exprs, vs.Values...)
					}
				}
			}
		}
		for _, e := range exprs {
			pinned = w.expr(e, pinned)
		}
		return pinned
	}
}

// expr walks an expression in evaluation (position) order, checking flagged
// calls against the current state and applying pin/unpin transitions.
// Function literals are analysed with the state at their creation point (the
// synchronous-callback assumption: Drain(func(rec){...}) runs under the
// caller's pin).
func (w *walker) expr(e ast.Expr, pinned bool) bool {
	if e == nil {
		return pinned
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, pinned)
			return false
		case *ast.CallExpr:
			// Arguments evaluate before the call; Inspect's preorder visits
			// the call first, so apply the call's own effect after returning
			// from children. Handled by checking in checkCall via post-order
			// emulation: recurse manually.
			pinned = w.call(n, pinned)
			return false
		}
		return true
	})
	return pinned
}

// call processes one call expression: arguments first (evaluation order),
// then the call itself.
func (w *walker) call(c *ast.CallExpr, pinned bool) bool {
	pinned = w.expr(c.Fun, pinned)
	for _, a := range c.Args {
		pinned = w.expr(a, pinned)
	}
	name, recv, ok := inStack(w.pass, c)
	if !ok {
		return pinned
	}
	switch {
	case pinNames[name]:
		return true
	case unpinNames[name]:
		return false
	case retireNames[name] && !autoPinRecv[recv]:
		if !pinned {
			target := name
			if recv != "" {
				target = recv + "." + name
			}
			w.pass.Report(c.Pos(),
				"raw %s is not dominated by LeaveQstate/PinRetire: a quiescent retirer races the epoch advance (PR 3); pin first or go through the auto-pinning RecordManager/ThreadHandle wrappers", target)
		}
	}
	return pinned
}

// checkCalls analyses a call (and everything it contains) under a fixed pin
// state without returning a state transition — used for defer/go statements.
func (w *walker) checkCalls(c *ast.CallExpr, pinned bool) {
	w.call(c, pinned)
}
