package retirepin_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/retirepin"
)

// TestRetirePin checks the seeded quiescent-retire violations, the
// //lint:allow hygiene golden (bare marker, missing reason, unknown
// analyzer, stale marker), and the forwarding exemption for stack-internal
// retire-path entry points.
func TestRetirePin(t *testing.T) {
	analysistest.Run(t, analysistest.Dir(), retirepin.Analyzer, "./retirepin/...", "./internal/reclaim/fwd")
}
