package protectorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/protectorder"
)

// TestProtectOrder checks the seeded hazard-pointer ordering violations:
// missing re-validation after Protect and dereference after Unprotect.
func TestProtectOrder(t *testing.T) {
	analysistest.Run(t, analysistest.Dir(), protectorder.Analyzer, "./internal/ds/po")
}
