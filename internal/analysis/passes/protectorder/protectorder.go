// Package protectorder proves the hazard-pointer calling convention in the
// data-structure packages (internal/ds/...): an announcement protects a
// record only if the record is still reachable when the announcement becomes
// visible, so a pointer loaded from the structure and then Protected must be
// re-validated (a fresh load compared against the held pointer) before it is
// dereferenced — otherwise the record may have been retired between the load
// and the announcement and the traversal reads freed memory (the
// retired-to-retired window the paper concedes for HP-incompatible
// operations). Symmetrically, once a pointer is Unprotected the thread holds
// no announcement for it and must not dereference it again.
//
// Two checks, both per function and structural:
//
//  1. protect-then-validate: after recv.Protect(p), some comparison
//     mentioning p (the re-validation load, e.g. src.Load() != p) must
//     appear before the first dereference of p (p.field, p.method());
//  2. no use after Unprotect: after recv.Unprotect(p), p must not be
//     dereferenced until it is reassigned or re-Protected. The taint is
//     control-flow aware: an Unprotect followed by return/continue/break
//     does not poison the code after the enclosing branch.
//
// Epoch-scheme traversal paths (no Protect at all) are out of scope — the
// schemes' grace periods cover them; this analyzer polices only the
// per-record protection idiom.
package protectorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer enforces protect-validate-dereference ordering in DS code.
var Analyzer = &analysis.Analyzer{
	Name: "protectorder",
	Doc:  "a Protected pointer must be re-validated before dereference; an Unprotected pointer must not be dereferenced",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathContains(pass.Pkg.Path(), "internal/ds") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkValidation(pass, fd.Body)
			w := &unprotWalker{pass: pass}
			w.stmts(fd.Body.List, map[*types.Var]token.Pos{})
		}
	}
	return nil
}

// protCall matches recv.<name>(v) where the method belongs to the
// reclamation stack and v is a plain identifier, returning v's object.
func protCall(pass *analysis.Pass, call *ast.CallExpr, name string) (*types.Var, bool) {
	f := analysis.CalleeOf(pass.Info, call)
	if f == nil || f.Name() != name || len(call.Args) != 1 {
		return nil, false
	}
	p := analysis.FuncPkgPath(f)
	if !analysis.PathHasSuffix(p, "internal/core") && !analysis.PathContains(p, "internal/reclaim") {
		return nil, false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, _ := pass.Info.Uses[id].(*types.Var)
	return v, v != nil
}

// event is one lexical occurrence relevant to the validation check.
type event struct {
	pos  token.Pos
	kind int // eProtect, eCompare, eDeref, eAssign
	v    *types.Var
}

const (
	eProtect = iota
	eCompare
	eDeref
	eAssign
)

// checkValidation implements check 1 with a lexical event scan: for every
// Protect(v), look forward for the first dereference of v; if no comparison
// mentioning v intervenes (and v is not reassigned first), the dereference
// trusts an unvalidated announcement.
func checkValidation(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	protects := map[token.Pos]*ast.CallExpr{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if v, ok := protCall(pass, n, "Protect"); ok {
				events = append(events, event{n.Pos(), eProtect, v})
				protects[n.Pos()] = n
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				for _, side := range []ast.Expr{n.X, n.Y} {
					if id, ok := ast.Unparen(side).(*ast.Ident); ok {
						if v, ok := pass.Info.Uses[id].(*types.Var); ok {
							events = append(events, event{n.Pos(), eCompare, v})
						}
					}
				}
			}
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if v, ok := pass.Info.Uses[id].(*types.Var); ok && isPointerish(v.Type()) {
					events = append(events, event{n.X.Pos(), eDeref, v})
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, ok := pass.Info.Uses[id].(*types.Var); ok {
						events = append(events, event{n.Pos(), eAssign, v})
					} else if v, ok := pass.Info.Defs[id].(*types.Var); ok {
						events = append(events, event{n.Pos(), eAssign, v})
					}
				}
			}
		}
		return true
	})
	// Events arrive in preorder, which tracks lexical position closely
	// enough; sort by position to make it exact.
	sortEvents(events)
	for i, e := range events {
		if e.kind != eProtect {
			continue
		}
		validated := false
		for _, later := range events[i+1:] {
			if later.v != e.v {
				continue
			}
			switch later.kind {
			case eCompare:
				validated = true
			case eAssign, eProtect:
				// Tracking epoch ends: reassigned or re-announced.
				validated = true
			case eDeref:
				if !validated {
					pass.Report(protects[e.pos].Pos(),
						"%s is dereferenced at line %d without re-validation after Protect: compare a fresh load against the protected pointer before trusting it (the record may have been retired before the announcement became visible)",
						e.v.Name(), pass.Fset.Position(later.pos).Line)
				}
				validated = true // one report per protect
			}
			if validated {
				break
			}
		}
	}
}

// sortEvents orders events by position (insertion sort; event lists are
// small and nearly sorted).
func sortEvents(ev []event) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].pos < ev[j-1].pos; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// isPointerish reports whether t can be dereferenced (pointer to struct —
// the record pointers the check cares about).
func isPointerish(t types.Type) bool {
	_, ok := types.Unalias(t).Underlying().(*types.Pointer)
	return ok
}

// unprotWalker implements check 2: a control-flow-aware taint walk. taint
// maps a variable to the position of the Unprotect that poisoned it.
type unprotWalker struct {
	pass *analysis.Pass
}

// stmts walks a statement list, mutating taint in place; a terminating
// branch's taint never merges back (callers pass copies into branches).
func (w *unprotWalker) stmts(list []ast.Stmt, taint map[*types.Var]token.Pos) {
	for _, s := range list {
		w.stmt(s, taint)
	}
}

func (w *unprotWalker) stmt(s ast.Stmt, taint map[*types.Var]token.Pos) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		w.stmts(s.List, taint)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, taint)
	case *ast.IfStmt:
		w.stmt(s.Init, taint)
		w.expr(s.Cond, taint)
		thenTaint := copyTaint(taint)
		w.stmts(s.Body.List, thenTaint)
		elseTaint := copyTaint(taint)
		if s.Else != nil {
			w.stmt(s.Else, elseTaint)
		}
		// Merge the fall-through arms back into the parent flow.
		if !analysis.Terminates(s.Body.List) {
			mergeTaint(taint, thenTaint)
		}
		if s.Else != nil {
			terminates := false
			if b, ok := s.Else.(*ast.BlockStmt); ok {
				terminates = analysis.Terminates(b.List)
			}
			if !terminates {
				mergeTaint(taint, elseTaint)
			}
		}
	case *ast.ForStmt:
		w.stmt(s.Init, taint)
		w.expr(s.Cond, taint)
		bodyTaint := copyTaint(taint)
		w.stmts(s.Body.List, bodyTaint)
		w.stmt(s.Post, bodyTaint)
		mergeTaint(taint, bodyTaint)
	case *ast.RangeStmt:
		w.expr(s.X, taint)
		bodyTaint := copyTaint(taint)
		w.stmts(s.Body.List, bodyTaint)
		mergeTaint(taint, bodyTaint)
	case *ast.SwitchStmt:
		w.stmt(s.Init, taint)
		w.expr(s.Tag, taint)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ct := copyTaint(taint)
				w.stmts(cc.Body, ct)
				if !analysis.Terminates(cc.Body) {
					mergeTaint(taint, ct)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, taint)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ct := copyTaint(taint)
				w.stmts(cc.Body, ct)
				if !analysis.Terminates(cc.Body) {
					mergeTaint(taint, ct)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ct := copyTaint(taint)
				w.stmts(cc.Body, ct)
				if !analysis.Terminates(cc.Body) {
					mergeTaint(taint, ct)
				}
			}
		}
	case *ast.DeferStmt:
		w.expr(s.Call, copyTaint(taint))
	case *ast.GoStmt:
		w.expr(s.Call, copyTaint(taint))
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, taint)
		}
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v, ok := passVar(w.pass, id); ok {
					delete(taint, v) // reassignment clears the taint
				}
			} else {
				w.expr(lhs, taint)
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X, taint)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, taint)
		}
	case *ast.SendStmt:
		w.expr(s.Chan, taint)
		w.expr(s.Value, taint)
	case *ast.IncDecStmt:
		w.expr(s.X, taint)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, taint)
					}
				}
			}
		}
	}
}

// expr scans an expression: Unprotect(v) taints v, Protect(v) clears it, a
// dereference of a tainted v is reported.
func (w *unprotWalker) expr(e ast.Expr, taint map[*types.Var]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, copyTaint(taint))
			return false
		case *ast.CallExpr:
			if v, ok := protCall(w.pass, n, "Unprotect"); ok {
				taint[v] = n.Pos()
				return false
			}
			if v, ok := protCall(w.pass, n, "Protect"); ok {
				delete(taint, v)
				return false
			}
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if v, ok := passVar(w.pass, id); ok {
					if unprotPos, tainted := taint[v]; tainted {
						w.pass.Report(n.Pos(),
							"%s is dereferenced after Unprotect (line %d): the thread no longer holds an announcement for it; re-Protect (and validate) or stop using the pointer",
							v.Name(), w.pass.Fset.Position(unprotPos).Line)
						delete(taint, v) // one report per taint
					}
				}
			}
		}
		return true
	})
}

// passVar resolves an identifier to its variable object.
func passVar(pass *analysis.Pass, id *ast.Ident) (*types.Var, bool) {
	if v, ok := pass.Info.Uses[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := pass.Info.Defs[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

func copyTaint(t map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	c := make(map[*types.Var]token.Pos, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// mergeTaint unions src into dst (a variable tainted on any fall-through
// path is tainted after the join).
func mergeTaint(dst, src map[*types.Var]token.Pos) {
	for k, v := range src {
		dst[k] = v
	}
}
