// Package analysis is a self-contained, dependency-free skeleton of the
// golang.org/x/tools/go/analysis API: analyzers receive a type-checked
// package (a Pass) and report position-anchored diagnostics. It exists
// because the repository's safety rests on calling conventions the compiler
// cannot see — the quiescent-retire contract, the quiescent-release slot
// contract, hazard-pointer protect-before-dereference, the single-writer
// core.Counter discipline — and those contracts deserve a build-time proof,
// not just runtime panics and -race stress. The module vendors no third-party
// code, so the framework (loader, driver, golden-test runner) is implemented
// here on the standard library alone: packages are loaded by shelling out to
// `go list -export` and type-checked against the build cache's export data.
//
// The analyzers themselves live in internal/analysis/passes/...; the
// multichecker binary is cmd/reclaimvet; the golden packages used by the
// analysistest runner form a standalone module under testdata/ (so deliberate
// contract violations never enter the main build).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (the //lint:allow key and the
// diagnostic prefix), a one-paragraph contract statement, and the Run
// function applied to every loaded package unit.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow markers.
	// It must be a single lower-case word.
	Name string
	// Doc states the contract the analyzer proves, first line short.
	Doc string
	// Run inspects one package unit and reports findings via Pass.Report.
	// The returned error aborts the whole run (loader-level trouble, not a
	// finding); contract violations are diagnostics, never errors.
	Run func(*Pass) error
}

// Pass carries one type-checked package unit through an analyzer. A unit is
// either a package's base sources, its in-package test augmentation, or its
// external _test package (see Loader); ReportFiles narrows diagnostics to the
// unit's own files so overlapping units never double-report.
type Pass struct {
	// Analyzer is the analyzer this pass runs.
	Analyzer *Analyzer
	// Fset resolves token positions for every file in the unit.
	Fset *token.FileSet
	// Files are the unit's parsed sources (including, for test units, the
	// base files the tests augment).
	Files []*ast.File
	// Pkg is the unit's type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
	// report receives diagnostics (wired by the driver; applies the
	// //lint:allow filter and the ReportFiles narrowing).
	report func(Diagnostic)
}

// Report emits a diagnostic at pos. Diagnostics suppressed by a reasoned
// //lint:allow marker are dropped by the driver; everything else fails the
// build.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The analyzer name is
// attached by the driver.
type Diagnostic struct {
	// Pos anchors the finding.
	Pos token.Pos
	// Message states the violated contract and the fix.
	Message string
	// Analyzer is the reporting analyzer's name (filled by the driver).
	Analyzer string
}
