package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// UnitKind distinguishes the three type-check units a package expands to.
type UnitKind int

// The three unit kinds: a package's base sources, the base sources augmented
// with its in-package _test.go files, and its external _test package.
const (
	UnitBase UnitKind = iota
	UnitInPackageTest
	UnitExternalTest
)

// Unit is one type-checked body of code an analyzer runs over. A package
// with test files expands into up to three units (base, in-package test,
// external test) so analyzers see test code with full type information;
// ReportFiles narrows each unit's diagnostics to the files the other units do
// not own, so nothing is reported twice.
type Unit struct {
	// PkgPath is the unit's import path ("/path_test" suffix for external
	// test packages, mirroring the compiler's package naming).
	PkgPath string
	// Kind says which of the package's three bodies this unit is.
	Kind UnitKind
	// Fset resolves positions for Files (shared across all units of a load).
	Fset *token.FileSet
	// Files are the parsed sources type-checked together for this unit.
	Files []*ast.File
	// ReportFiles marks the files this unit owns for reporting purposes.
	ReportFiles map[*ast.File]bool
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info is the type-checker's fact table for Files.
	Info *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	ForTest      string
	DepOnly      bool
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load type-checks the packages matching patterns (resolved relative to dir,
// "" meaning the current directory) and expands each into analysis units.
// Dependencies — including test-only and standard-library ones — are resolved
// from the build cache's export data via `go list -deps -test -export`, so
// loading needs no network and no third-party machinery; only the target
// packages themselves are parsed from source.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	args := append([]string{"list", "-deps", "-test", "-export", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	// testExports[forTest][path] is export data for the build of path linked
	// into forTest's test binary. The package under test itself appears as
	// "pkg [pkg.test]" (compiled with its in-package test files), and every
	// dependency that transitively imports it is rebuilt against that variant
	// as "dep [pkg.test]" — such deps may have NO plain entry at all when the
	// pattern list doesn't reach them otherwise, so each variant is recorded,
	// not just the package under test's own.
	testExports := make(map[string]map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			if p.ForTest == "" {
				exports[p.ImportPath] = p.Export
			} else if i := strings.Index(p.ImportPath, " ["); i >= 0 {
				m := testExports[p.ForTest]
				if m == nil {
					m = make(map[string]string)
					testExports[p.ForTest] = m
				}
				m[p.ImportPath[:i]] = p.Export
			}
		}
		// Targets are the pattern matches themselves: not dependency-only,
		// not synthesized test binaries ("pkg.test"), not test variants
		// ("pkg [pkg.test]" — their files are folded into the plain entry's
		// TestGoFiles/XTestGoFiles already).
		if !p.DepOnly && p.ForTest == "" && !strings.HasSuffix(p.ImportPath, ".test") && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("go list %s: no packages matched", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	// newImporter builds an export-data importer. testPkg, when non-empty,
	// resolves paths from that package's test-binary variants first: the
	// package under test (compiled with its in-package test files) and any
	// dependency rebuilt against it. External test units need the package
	// under test and every dependency that mentions it to resolve to the
	// same type identities, so they get a fresh importer (fresh cache) with
	// the redirect instead of sharing the base importer.
	newImporter := func(testPkg string) (types.ImporterFrom, error) {
		gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			e, ok := exports[path]
			if te, tok := testExports[testPkg][path]; tok {
				e, ok = te, true
			}
			if !ok {
				return nil, fmt.Errorf("no export data for %q (not a dependency of the loaded patterns)", path)
			}
			return os.Open(e)
		})
		from, ok := gc.(types.ImporterFrom)
		if !ok {
			return nil, errors.New("go/importer gc importer does not implement types.ImporterFrom")
		}
		return from, nil
	}
	base, err := newImporter("")
	if err != nil {
		return nil, err
	}

	var units []*Unit
	for _, t := range targets {
		parse := func(names []string) ([]*ast.File, error) {
			var files []*ast.File
			for _, name := range names {
				f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
				if err != nil {
					return nil, err
				}
				files = append(files, f)
			}
			return files, nil
		}
		baseFiles, err := parse(t.GoFiles)
		if err != nil {
			return nil, err
		}
		testFiles, err := parse(t.TestGoFiles)
		if err != nil {
			return nil, err
		}
		xtestFiles, err := parse(t.XTestGoFiles)
		if err != nil {
			return nil, err
		}

		check := func(path string, files []*ast.File, imp types.ImporterFrom) (*types.Package, *types.Info, error) {
			info := &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
				Scopes:     make(map[ast.Node]*types.Scope),
			}
			var errs []error
			conf := types.Config{
				Importer: &unsafeAwareImporter{base: imp},
				Error:    func(err error) { errs = append(errs, err) },
			}
			pkg, _ := conf.Check(path, fset, files, info)
			if len(errs) > 0 {
				return nil, nil, fmt.Errorf("type-checking %s: %v", path, errors.Join(errs...))
			}
			return pkg, info, nil
		}

		if len(baseFiles) > 0 {
			pkg, info, err := check(t.ImportPath, baseFiles, base)
			if err != nil {
				return nil, err
			}
			units = append(units, &Unit{
				PkgPath: t.ImportPath, Kind: UnitBase, Fset: fset,
				Files: baseFiles, ReportFiles: fileSet(baseFiles), Pkg: pkg, Info: info,
			})
		}
		// The in-package test unit re-checks the base files together with the
		// _test.go files (that is how the compiler builds them); only the
		// test files are report-owned here, the base unit owns the rest.
		if len(testFiles) > 0 {
			all := append(append([]*ast.File{}, baseFiles...), testFiles...)
			pkg, info, err := check(t.ImportPath, all, base)
			if err != nil {
				return nil, err
			}
			units = append(units, &Unit{
				PkgPath: t.ImportPath, Kind: UnitInPackageTest, Fset: fset,
				Files: all, ReportFiles: fileSet(testFiles), Pkg: pkg, Info: info,
			})
		}
		if len(xtestFiles) > 0 {
			// The external test package imports the package under test, and
			// its dependencies reference that package by path; both must
			// resolve to one set of type identities, so this unit gets its
			// own importer redirecting the path to the test-variant export
			// data (which also carries the in-package test files' exported
			// helpers).
			ximp, err := newImporter(t.ImportPath)
			if err != nil {
				return nil, err
			}
			pkg, info, err := check(t.ImportPath+"_test", xtestFiles, ximp)
			if err != nil {
				return nil, err
			}
			units = append(units, &Unit{
				PkgPath: t.ImportPath + "_test", Kind: UnitExternalTest, Fset: fset,
				Files: xtestFiles, ReportFiles: fileSet(xtestFiles), Pkg: pkg, Info: info,
			})
		}
	}
	return units, nil
}

// fileSet builds the report-ownership set for a unit.
func fileSet(files []*ast.File) map[*ast.File]bool {
	m := make(map[*ast.File]bool, len(files))
	for _, f := range files {
		m[f] = true
	}
	return m
}

// unsafeAwareImporter short-circuits "unsafe" (which has no export data) and
// delegates everything else to the export-data importer.
type unsafeAwareImporter struct {
	base types.ImporterFrom
}

func (i *unsafeAwareImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *unsafeAwareImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.base.ImportFrom(path, dir, mode)
}
