package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Helpers shared by the passes. Package identity is matched by path *suffix*
// (PathHasSuffix / PathContains) rather than the literal module path, so the
// analyzers recognise both the real packages ("repro/internal/core") and the
// analysistest golden module's stubs ("vettest/internal/core") — the same
// trick x/tools analyzers use for their testdata GOPATHs.

// PathHasSuffix reports whether pkgPath is suffix or ends in "/"+suffix.
func PathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// PathContains reports whether pkgPath contains sub as a path segment
// sequence (e.g. "internal/reclaim/" to match every scheme package).
func PathContains(pkgPath, sub string) bool {
	return strings.Contains(pkgPath+"/", "/"+strings.Trim(sub, "/")+"/")
}

// CalleeOf resolves the function or method a call expression invokes, or nil
// when the callee is not a named function (conversions, function values,
// built-ins).
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// FuncPkgPath returns the import path of the package declaring f ("" for
// builtins/universe).
func FuncPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// RecvTypeName returns the name of f's receiver's named type ("" for plain
// functions or unnamed receivers), looking through pointers and generic
// instantiation.
func RecvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := NamedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// NamedOf unwraps t to its origin *types.Named, looking through pointers and
// aliases; nil when t has no named core.
func NamedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin()
	}
	return nil
}

// IsMethodNamed reports whether f is a method called name whose receiver's
// named type is declared in a package matched by pkgSuffix (PathHasSuffix).
func IsMethodNamed(f *types.Func, pkgSuffix, recv, name string) bool {
	if f == nil || f.Name() != name || FuncPkgPath(f) == "" {
		return false
	}
	return PathHasSuffix(FuncPkgPath(f), pkgSuffix) && RecvTypeName(f) == recv
}

// Terminates reports whether the statement list definitely transfers control
// away (return, branch, panic, or an if with two terminating arms) — a
// syntactic approximation, precise enough for the structural dominance walks.
func Terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return Terminates(s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return Terminates(s.Body.List) && stmtTerminates(s.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(s.Stmt)
	}
	return false
}
