package kvservice_test

// Fault-plane regression tests for the server's graceful-degradation
// contracts: a dead peer that goes silent mid-frame must not hold a handler
// goroutine or its worker slots, overload must fast-fail with ERR_BUSY while
// leaving the connection usable, and the slow-peer watchdog must reap
// connections that never complete a frame even under a patient ReadTimeout.

import (
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/kvwire"
	"repro/internal/recordmgr"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// assertDropped waits for the server to close conn: the read must fail with a
// real connection error (EOF, reset), not this probe's own deadline.
func assertDropped(t *testing.T, conn net.Conn, within time.Duration) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(within))
	var b [1]byte
	if _, err := conn.Read(b[:]); err == nil {
		t.Fatal("read got data on a connection the server should have dropped")
	} else {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatalf("server did not drop the dead peer within %v", within)
		}
	}
}

// TestServerDropsDeadPeerMidFrame is the regression test for the fault the
// read deadlines exist to kill: a peer that stops sending in the middle of a
// request frame. Both phases are covered — a connection that dies mid-frame
// while holding worker slots (bound: the slots come back after IdleHold, the
// connection itself is dropped when the frame's absolute ReadTimeout expires)
// and one that dies mid-frame before ever completing a request (unbound:
// only the ReadTimeout applies). In both cases the handler goroutine must
// unwind, the slots must return to the registries, and the server must keep
// serving fresh connections and Close cleanly.
func TestServerDropsDeadPeerMidFrame(t *testing.T) {
	srv, addr := startServer(t, kvservice.Config{
		Scheme:      recordmgr.SchemeDEBRA,
		MaxConns:    2,
		Burst:       8,
		IdleHold:    20 * time.Millisecond,
		ReadTimeout: 100 * time.Millisecond,
		UsePool:     true,
	})
	defer srv.Close()

	partial := kvwire.AppendPut(nil, 2, []byte("dead"))

	// Bound case: complete one request (binding slots mid-burst), then write
	// part of the next frame and go silent with the slots still held.
	bound := dial(t, addr)
	if resp := bound.put(1, "live"); resp.Status != kvwire.StatusOK {
		t.Fatalf("PUT: status %v", resp.Status)
	}
	if _, err := bound.conn.Write(partial[:len(partial)-2]); err != nil {
		t.Fatalf("partial write: %v", err)
	}

	// Unbound case: a fresh connection sends one byte of a frame and dies
	// without ever binding a slot.
	unbound := dial(t, addr)
	if _, err := unbound.conn.Write(partial[:1]); err != nil {
		t.Fatalf("partial write: %v", err)
	}

	assertDropped(t, bound.conn, 5*time.Second)
	assertDropped(t, unbound.conn, 5*time.Second)
	waitFor(t, 5*time.Second, "slots released and handlers unwound", func() bool {
		snap := srv.Stats()
		return snap.SlotsLive == 0 && snap.OpenConns == 0
	})

	// The dead peers held nothing back: a fresh connection is served at once.
	fresh := dial(t, addr)
	if resp := fresh.put(3, "after"); resp.Status != kvwire.StatusOK {
		t.Fatalf("PUT after dead peers dropped: status %v", resp.Status)
	}

	srv.Close()
	snap := srv.Stats()
	if snap.Manager.Retired != snap.Manager.Freed {
		t.Fatalf("after Close: Retired=%d Freed=%d", snap.Manager.Retired, snap.Manager.Freed)
	}
}

// TestServerBusyFastFailLeavesConnectionUsable: with every worker slot held,
// a request fast-fails with ERR_BUSY inside the acquire bound instead of
// waiting — and because the framing stayed intact, the same connection's
// retries succeed the moment the holder's IdleHold returns the slot.
func TestServerBusyFastFailLeavesConnectionUsable(t *testing.T) {
	srv, addr := startServer(t, kvservice.Config{
		Scheme:       recordmgr.SchemeDEBRA,
		MaxConns:     1,
		Burst:        64,
		IdleHold:     time.Second,
		AcquireWait:  5 * time.Millisecond,
		AcquireQueue: 2,
		UsePool:      true,
	})
	defer srv.Close()

	holder := dial(t, addr)
	if resp := holder.put(1, "hold"); resp.Status != kvwire.StatusOK {
		t.Fatalf("PUT: status %v", resp.Status)
	}

	// holder keeps the only slot bound until its IdleHold expires; a second
	// connection's request must be shed within ~AcquireWait, not queued.
	other := dial(t, addr)
	frame := kvwire.AppendPut(nil, 2, []byte("want"))
	if resp := other.roundTrip(frame); resp.Status != kvwire.StatusBusy {
		t.Fatalf("request against a held slot: status %v, want StatusBusy", resp.Status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := other.roundTrip(frame)
		if resp.Status == kvwire.StatusOK {
			break
		}
		if resp.Status != kvwire.StatusBusy {
			t.Fatalf("retry after ERR_BUSY: status %v", resp.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never became available to the shed connection")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The STATS inline snapshot includes this connection's unmerged tally, so
	// the fast-fails it absorbed are visible without a burst boundary.
	resp := other.stats()
	if resp.Status != kvwire.StatusOK {
		t.Fatalf("STATS: status %v", resp.Status)
	}
	var snap kvservice.Snapshot
	if err := json.Unmarshal(resp.Body, &snap); err != nil {
		t.Fatalf("decode STATS body: %v", err)
	}
	if snap.Busy < 1 {
		t.Fatalf("Snapshot.Busy = %d after observed ERR_BUSY fast-fails", snap.Busy)
	}
}

// TestServerReapsSilentPeer: the watchdog is defense in depth under a patient
// ReadTimeout — a connection that completes no frame within ReapAfter is
// closed by the reaper long before the 10s read deadline could fire.
func TestServerReapsSilentPeer(t *testing.T) {
	srv, addr := startServer(t, kvservice.Config{
		Scheme:      recordmgr.SchemeDEBRA,
		MaxConns:    2,
		ReadTimeout: 10 * time.Second,
		ReapAfter:   40 * time.Millisecond,
		UsePool:     true,
	})
	defer srv.Close()

	silent := dial(t, addr) // admitted, never sends a byte
	waitFor(t, 5*time.Second, "watchdog reap", func() bool {
		return srv.Stats().ReapedConns >= 1
	})
	assertDropped(t, silent.conn, 5*time.Second)
	waitFor(t, 5*time.Second, "handler unwound", func() bool {
		return srv.Stats().OpenConns == 0
	})
}
