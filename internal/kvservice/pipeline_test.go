package kvservice_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/kvwire"
	"repro/internal/recordmgr"
)

// These are the pipelined-protocol conformance tests: a client that writes
// many frames before reading anything must get exactly one response per
// request, in request order, regardless of how the bytes were chunked on the
// wire, how deep the server's batches are, and whether the slot-tenure
// timeouts (IdleHold, ReadTimeout) fire between frames.

// readResponse reads and decodes the next response frame off conn.
func readResponse(t *testing.T, conn net.Conn, buf []byte) (kvwire.Response, []byte) {
	t.Helper()
	payload, err := kvwire.ReadFrame(conn, buf)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	resp, err := kvwire.DecodeResponse(payload)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, payload
}

// TestPipelineBatchInOrder writes a window of interdependent requests in one
// write and checks every response against sequential semantics: per-key
// operation order is request order even when the server executes the batch
// grouped by partition.
func TestPipelineBatchInOrder(t *testing.T) {
	srv, addr := startServer(t, kvservice.Config{
		Scheme: recordmgr.SchemeDEBRA, Partitions: 2, UsePool: true,
	})
	defer srv.Close()
	conn, err := net.Dial(addr.Network(), addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	var batch []byte
	batch = kvwire.AppendPut(batch, 1, []byte("a")) // created -> 0
	batch = kvwire.AppendPut(batch, 1, []byte("b")) // replaced -> 1
	batch = kvwire.AppendGet(batch, 1)              // "b"
	batch = kvwire.AppendPut(batch, 2, []byte("x")) // other key, same window
	batch = kvwire.AppendDel(batch, 1)              // hit -> 1
	batch = kvwire.AppendGet(batch, 1)              // NotFound
	batch = kvwire.AppendGet(batch, 2)              // "x"
	batch = kvwire.AppendDel(batch, 3)              // miss -> 0
	if _, err := conn.Write(batch); err != nil {
		t.Fatalf("write batch: %v", err)
	}

	want := []struct {
		status kvwire.Status
		body   string
	}{
		{kvwire.StatusOK, "\x00"},
		{kvwire.StatusOK, "\x01"},
		{kvwire.StatusOK, "b"},
		{kvwire.StatusOK, "\x00"},
		{kvwire.StatusOK, "\x01"},
		{kvwire.StatusNotFound, ""},
		{kvwire.StatusOK, "x"},
		{kvwire.StatusOK, "\x00"},
	}
	var buf []byte
	for i, w := range want {
		var resp kvwire.Response
		resp, buf = readResponse(t, conn, buf)
		if resp.Status != w.status || string(resp.Body) != w.body {
			t.Fatalf("response %d: status=%v body=%q, want status=%v body=%q",
				i, resp.Status, resp.Body, w.status, w.body)
		}
	}
}

// TestPipelineInterleavedWrites streams several frames byte-by-byte and in
// odd-sized chunks: the server must reassemble frames across reads and never
// answer a frame early or out of order.
func TestPipelineInterleavedWrites(t *testing.T) {
	srv, addr := startServer(t, kvservice.Config{Scheme: recordmgr.SchemeEBR, UsePool: true})
	defer srv.Close()
	conn, err := net.Dial(addr.Network(), addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	var stream []byte
	stream = kvwire.AppendPut(stream, 7, []byte("seven"))
	stream = kvwire.AppendGet(stream, 7)
	stream = kvwire.AppendPut(stream, 8, []byte("eight"))
	stream = kvwire.AppendGet(stream, 8)

	done := make(chan error, 1)
	go func() {
		// Dribble the stream: single bytes for the first frame and a half,
		// then ragged 3-byte chunks, so reads land on every kind of frame
		// boundary.
		for i := 0; i < len(stream); {
			n := 1
			if i > len(stream)/3 {
				n = 3
			}
			if i+n > len(stream) {
				n = len(stream) - i
			}
			if _, err := conn.Write(stream[i : i+n]); err != nil {
				done <- err
				return
			}
			i += n
			time.Sleep(200 * time.Microsecond)
		}
		done <- nil
	}()

	var buf []byte
	var resp kvwire.Response
	resp, buf = readResponse(t, conn, buf)
	if resp.Status != kvwire.StatusOK || !bytes.Equal(resp.Body, []byte{0}) {
		t.Fatalf("PUT 7: status=%v body=%v", resp.Status, resp.Body)
	}
	resp, buf = readResponse(t, conn, buf)
	if resp.Status != kvwire.StatusOK || string(resp.Body) != "seven" {
		t.Fatalf("GET 7: status=%v body=%q", resp.Status, resp.Body)
	}
	resp, buf = readResponse(t, conn, buf)
	if resp.Status != kvwire.StatusOK || !bytes.Equal(resp.Body, []byte{0}) {
		t.Fatalf("PUT 8: status=%v body=%v", resp.Status, resp.Body)
	}
	resp, _ = readResponse(t, conn, buf)
	if resp.Status != kvwire.StatusOK || string(resp.Body) != "eight" {
		t.Fatalf("GET 8: status=%v body=%q", resp.Status, resp.Body)
	}
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

// TestPipelineMalformedMidBatch sends good frames followed by a malformed one
// in a single write: every preceding request must be answered (flushed before
// the drop), then the diagnostic ERR arrives and the connection closes.
func TestPipelineMalformedMidBatch(t *testing.T) {
	cases := []struct {
		name string
		tail []byte
	}{
		{"unknown opcode", []byte{0, 0, 0, 1, 0xee}},
		{"empty frame", []byte{0, 0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, addr := startServer(t, kvservice.Config{Scheme: recordmgr.SchemeDEBRA, UsePool: true})
			defer srv.Close()
			conn, err := net.Dial(addr.Network(), addr.String())
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer conn.Close()

			var batch []byte
			batch = kvwire.AppendPut(batch, 1, []byte("one"))
			batch = kvwire.AppendGet(batch, 1)
			batch = kvwire.AppendGet(batch, 2)
			batch = append(batch, tc.tail...)
			if _, err := conn.Write(batch); err != nil {
				t.Fatalf("write batch: %v", err)
			}

			var buf []byte
			var resp kvwire.Response
			resp, buf = readResponse(t, conn, buf)
			if resp.Status != kvwire.StatusOK {
				t.Fatalf("PUT before the malformed frame: %v", resp.Status)
			}
			resp, buf = readResponse(t, conn, buf)
			if resp.Status != kvwire.StatusOK || string(resp.Body) != "one" {
				t.Fatalf("GET 1 before the malformed frame: status=%v body=%q", resp.Status, resp.Body)
			}
			resp, buf = readResponse(t, conn, buf)
			if resp.Status != kvwire.StatusNotFound {
				t.Fatalf("GET 2 before the malformed frame: %v", resp.Status)
			}
			resp, _ = readResponse(t, conn, buf)
			if resp.Status != kvwire.StatusErr {
				t.Fatalf("malformed frame: got status %v, want StatusErr", resp.Status)
			}
			assertDropped(t, conn, 5*time.Second)
		})
	}
}

// TestPipelineDepthCap floods the connection with more frames than the
// server's PipelineDepth in one write: every frame is still answered in
// order (the drain loop runs multiple batches) and the batch counter shows
// the cap was respected rather than one giant batch executed.
func TestPipelineDepthCap(t *testing.T) {
	const depth, frames = 4, 12
	srv, addr := startServer(t, kvservice.Config{
		Scheme: recordmgr.SchemeDEBRA, UsePool: true, PipelineDepth: depth,
	})
	conn, err := net.Dial(addr.Network(), addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	var batch []byte
	for i := int64(0); i < frames; i++ {
		batch = kvwire.AppendPut(batch, i, []byte("v"))
	}
	if _, err := conn.Write(batch); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	var buf []byte
	for i := 0; i < frames; i++ {
		var resp kvwire.Response
		resp, buf = readResponse(t, conn, buf)
		if resp.Status != kvwire.StatusOK || !bytes.Equal(resp.Body, []byte{0}) {
			t.Fatalf("PUT %d: status=%v body=%v", i, resp.Status, resp.Body)
		}
	}
	conn.Close()
	srv.Close()
	snap := srv.Stats()
	if snap.Puts != frames {
		t.Fatalf("served %d PUTs, want %d", snap.Puts, frames)
	}
	if minBatches := int64(frames / depth); snap.Batches < minBatches {
		t.Fatalf("PipelineDepth=%d over %d frames ran %d batches, want >= %d",
			depth, frames, snap.Batches, minBatches)
	}
}

// TestPipelineIdleHoldReleasesSlotsMidWindow checks the batching path against
// the slot-tenure contract: a connection holding slots mid-burst with a
// partial frame buffered must still release its slots after IdleHold, and the
// late-completed frame must then be served through a transparent reacquire.
func TestPipelineIdleHoldReleasesSlotsMidWindow(t *testing.T) {
	srv, addr := startServer(t, kvservice.Config{
		Scheme:   recordmgr.SchemeDEBRA,
		UsePool:  true,
		IdleHold: 5 * time.Millisecond,
	})
	defer srv.Close()
	conn, err := net.Dial(addr.Network(), addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	// One complete frame binds the slots; the trailing partial frame keeps
	// the connection mid-window.
	full := kvwire.AppendPut(nil, 1, []byte("one"))
	next := kvwire.AppendGet(nil, 1)
	if _, err := conn.Write(append(append([]byte(nil), full...), next[:5]...)); err != nil {
		t.Fatalf("write: %v", err)
	}
	var buf []byte
	resp, buf := readResponse(t, conn, buf)
	if resp.Status != kvwire.StatusOK {
		t.Fatalf("PUT: %v", resp.Status)
	}

	// The partial frame is not a completed request, so IdleHold must return
	// the slots to the registry while the connection stays up.
	waitFor(t, 5*time.Second, "idle slot release with a partial frame buffered", func() bool {
		return srv.Stats().SlotsLive == 0
	})

	// Completing the frame reacquires and serves as if nothing happened.
	if _, err := conn.Write(next[5:]); err != nil {
		t.Fatalf("write completion: %v", err)
	}
	resp, _ = readResponse(t, conn, buf)
	if resp.Status != kvwire.StatusOK || string(resp.Body) != "one" {
		t.Fatalf("GET after idle release: status=%v body=%q", resp.Status, resp.Body)
	}
}

// TestPipelineReadTimeoutDropsTrailingPartial checks the other tenure bound:
// when a window's trailing frame never completes, the preceding responses are
// flushed and the connection is dropped once the frame's absolute ReadTimeout
// expires — batching must not let a half-frame hold the connection forever.
func TestPipelineReadTimeoutDropsTrailingPartial(t *testing.T) {
	srv, addr := startServer(t, kvservice.Config{
		Scheme:      recordmgr.SchemeDEBRA,
		UsePool:     true,
		IdleHold:    5 * time.Millisecond,
		ReadTimeout: 50 * time.Millisecond,
	})
	defer srv.Close()
	conn, err := net.Dial(addr.Network(), addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	var batch []byte
	batch = kvwire.AppendPut(batch, 1, []byte("one"))
	batch = kvwire.AppendGet(batch, 1)
	partial := kvwire.AppendGet(nil, 2)
	batch = append(batch, partial[:5]...)
	if _, err := conn.Write(batch); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Both complete frames are answered even though the window ends in an
	// abandoned half-frame.
	var buf []byte
	resp, buf := readResponse(t, conn, buf)
	if resp.Status != kvwire.StatusOK {
		t.Fatalf("PUT: %v", resp.Status)
	}
	resp, _ = readResponse(t, conn, buf)
	if resp.Status != kvwire.StatusOK || string(resp.Body) != "one" {
		t.Fatalf("GET: status=%v body=%q", resp.Status, resp.Body)
	}
	// The half-frame never completes: the connection must be dropped once its
	// ReadTimeout expires.
	assertDropped(t, conn, 5*time.Second)
}
