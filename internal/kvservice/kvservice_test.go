package kvservice_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/kvservice"
	"repro/internal/kvwire"
	"repro/internal/recordmgr"
)

// client is a minimal synchronous kvwire client for driving the server in
// tests.
type client struct {
	t    *testing.T
	conn net.Conn
	buf  []byte
}

func dial(t *testing.T, addr net.Addr) *client {
	t.Helper()
	conn, err := net.Dial(addr.Network(), addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{t: t, conn: conn}
}

func (c *client) roundTrip(frame []byte) kvwire.Response {
	c.t.Helper()
	if _, err := c.conn.Write(frame); err != nil {
		c.t.Fatalf("write: %v", err)
	}
	payload, err := kvwire.ReadFrame(c.conn, c.buf)
	if err != nil {
		c.t.Fatalf("read response: %v", err)
	}
	c.buf = payload
	resp, err := kvwire.DecodeResponse(payload)
	if err != nil {
		c.t.Fatalf("decode response: %v", err)
	}
	return resp
}

func (c *client) get(key int64) kvwire.Response { return c.roundTrip(kvwire.AppendGet(nil, key)) }
func (c *client) del(key int64) kvwire.Response { return c.roundTrip(kvwire.AppendDel(nil, key)) }
func (c *client) stats() kvwire.Response        { return c.roundTrip(kvwire.AppendStats(nil)) }
func (c *client) put(key int64, v string) kvwire.Response {
	return c.roundTrip(kvwire.AppendPut(nil, key, []byte(v)))
}

func startServer(t *testing.T, cfg kvservice.Config) (*kvservice.Server, net.Addr) {
	t.Helper()
	srv, err := kvservice.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return srv, addr
}

func TestServerBasicOps(t *testing.T) {
	srv, addr := startServer(t, kvservice.Config{Scheme: recordmgr.SchemeDEBRA, Partitions: 2, MaxConns: 2, Burst: 4, UsePool: true})
	defer srv.Close()
	c := dial(t, addr)

	if resp := c.get(1); resp.Status != kvwire.StatusNotFound {
		t.Fatalf("GET on empty store: %v", resp.Status)
	}
	if resp := c.put(1, "one"); resp.Status != kvwire.StatusOK || !bytes.Equal(resp.Body, []byte{0}) {
		t.Fatalf("first PUT: status=%v body=%v", resp.Status, resp.Body)
	}
	if resp := c.put(1, "uno"); resp.Status != kvwire.StatusOK || !bytes.Equal(resp.Body, []byte{1}) {
		t.Fatalf("replacing PUT: status=%v body=%v", resp.Status, resp.Body)
	}
	if resp := c.get(1); resp.Status != kvwire.StatusOK || string(resp.Body) != "uno" {
		t.Fatalf("GET after PUT: status=%v body=%q", resp.Status, resp.Body)
	}
	if resp := c.del(1); resp.Status != kvwire.StatusOK || !bytes.Equal(resp.Body, []byte{1}) {
		t.Fatalf("DEL of present key: status=%v body=%v", resp.Status, resp.Body)
	}
	if resp := c.del(1); resp.Status != kvwire.StatusOK || !bytes.Equal(resp.Body, []byte{0}) {
		t.Fatalf("DEL of absent key: status=%v body=%v", resp.Status, resp.Body)
	}
	if resp := c.get(1); resp.Status != kvwire.StatusNotFound {
		t.Fatalf("GET after DEL: %v", resp.Status)
	}

	resp := c.stats()
	if resp.Status != kvwire.StatusOK {
		t.Fatalf("STATS: %v", resp.Status)
	}
	var snap kvservice.Snapshot
	if err := json.Unmarshal(resp.Body, &snap); err != nil {
		t.Fatalf("STATS body is not valid JSON: %v\n%s", err, resp.Body)
	}
	// The connection's own preceding operations must be visible in its STATS
	// response even mid-burst.
	if snap.Gets != 3 || snap.GetHits != 1 || snap.Puts != 2 || snap.PutReplaced != 1 || snap.Dels != 2 || snap.DelHits != 1 {
		t.Fatalf("STATS counters: %+v", snap)
	}
	if snap.Scheme != recordmgr.SchemeDEBRA || snap.Partitions != 2 {
		t.Fatalf("STATS identity: %+v", snap)
	}
}

func TestServerRejectsMalformedAndCloses(t *testing.T) {
	srv, addr := startServer(t, kvservice.Config{Scheme: recordmgr.SchemeEBR})
	defer srv.Close()
	c := dial(t, addr)
	// An unknown opcode inside a well-formed frame gets a diagnostic, then
	// the server drops the connection.
	bad := []byte{0, 0, 0, 1, 0xee}
	if _, err := c.conn.Write(bad); err != nil {
		t.Fatalf("write: %v", err)
	}
	payload, err := kvwire.ReadFrame(c.conn, nil)
	if err != nil {
		t.Fatalf("reading error response: %v", err)
	}
	resp, err := kvwire.DecodeResponse(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Status != kvwire.StatusErr {
		t.Fatalf("malformed request: got status %v, want StatusErr", resp.Status)
	}
	if _, err := kvwire.ReadFrame(c.conn, nil); err == nil {
		t.Fatal("connection stayed open after a protocol violation")
	}
}

// TestServerLifecycle is the issue's acceptance test: for every scheme,
// drive concurrent clients through mixed traffic (more connections than
// worker slots, so burst release/reacquire churn is exercised), close the
// server, and assert the shutdown invariant Retired == Freed.
func TestServerLifecycle(t *testing.T) {
	const (
		conns      = 6
		maxConns   = 3 // fewer slots than connections: bursts must multiplex
		reqsPer    = 300
		burst      = 16
		partitions = 2
	)
	for _, scheme := range recordmgr.Schemes() {
		t.Run(scheme, func(t *testing.T) {
			srv, addr := startServer(t, kvservice.Config{
				Scheme:     scheme,
				Partitions: partitions,
				MaxConns:   maxConns,
				Burst:      burst,
				UsePool:    true,
				Reclaimers: 1,
			})
			var wg sync.WaitGroup
			for w := 0; w < conns; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					conn, err := net.Dial(addr.Network(), addr.String())
					if err != nil {
						t.Errorf("conn %d: dial: %v", w, err)
						return
					}
					defer conn.Close()
					var req, buf []byte
					for i := 0; i < reqsPer; i++ {
						key := int64(w*reqsPer + i%100)
						switch i % 4 {
						case 0, 1:
							req = kvwire.AppendPut(req[:0], key, []byte(fmt.Sprintf("v%d", i)))
						case 2:
							req = kvwire.AppendGet(req[:0], key)
						default:
							req = kvwire.AppendDel(req[:0], key)
						}
						if _, err := conn.Write(req); err != nil {
							t.Errorf("conn %d: write: %v", w, err)
							return
						}
						payload, err := kvwire.ReadFrame(conn, buf)
						if err != nil {
							t.Errorf("conn %d: read: %v", w, err)
							return
						}
						buf = payload
						resp, err := kvwire.DecodeResponse(payload)
						if err != nil {
							t.Errorf("conn %d: decode: %v", w, err)
							return
						}
						if resp.Status == kvwire.StatusErr {
							t.Errorf("conn %d: server error: %s", w, resp.Body)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			srv.Close()
			snap := srv.Stats()
			if snap.Gets+snap.Puts+snap.Dels != conns*reqsPer {
				t.Fatalf("served %d ops, want %d", snap.Gets+snap.Puts+snap.Dels, conns*reqsPer)
			}
			if snap.SlotsLive != 0 {
				t.Fatalf("slots still live after Close: %d", snap.SlotsLive)
			}
			m := snap.Manager
			if scheme != recordmgr.SchemeNone {
				if m.Retired != m.Freed {
					t.Fatalf("after Close: Retired=%d Freed=%d", m.Retired, m.Freed)
				}
				if m.Unreclaimed != 0 {
					t.Fatalf("after Close: Unreclaimed=%d", m.Unreclaimed)
				}
			}
			if m.Retired == 0 {
				t.Fatal("workload retired nothing; the test is not exercising reclamation")
			}
		})
	}
}

// TestServerIdleConnDoesNotStarveOthers is the regression test for the slot
// starvation deadlock: a connection that went idle mid-burst used to keep its
// worker slots until its next request, and once every slot was parked that
// way the remaining connections spun in acquire forever — kvload's prefill,
// which leaves connections open and idle after their stripe, wedged the
// server deterministically whenever conns > MaxConns. IdleHold is the fix:
// an idle holder releases its slots and reacquires on its next frame.
func TestServerIdleConnDoesNotStarveOthers(t *testing.T) {
	srv, addr := startServer(t, kvservice.Config{
		Scheme:     recordmgr.SchemeDEBRA,
		Partitions: 2,
		MaxConns:   1, // a single slot per partition: one parked holder starves everyone
		Burst:      8,
		IdleHold:   2 * time.Millisecond,
		UsePool:    true,
		Reclaimers: 1,
		Adaptive:   true, // the original wedge surfaced under the adaptive controller
	})
	defer srv.Close()

	a := dial(t, addr)
	if resp := a.put(1, "one"); resp.Status != kvwire.StatusOK {
		t.Fatalf("conn A PUT: %v", resp.Status)
	}

	// Conn A is now parked mid-burst (1 of 8 requests served), holding the
	// only slot of every partition. Without the idle release, conn B's first
	// request would wait in acquire forever.
	type result struct {
		resp kvwire.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		conn, err := net.Dial(addr.Network(), addr.String())
		if err != nil {
			done <- result{err: err}
			return
		}
		defer conn.Close()
		if _, err := conn.Write(kvwire.AppendPut(nil, 2, []byte("two"))); err != nil {
			done <- result{err: err}
			return
		}
		payload, err := kvwire.ReadFrame(conn, nil)
		if err != nil {
			done <- result{err: err}
			return
		}
		resp, err := kvwire.DecodeResponse(payload)
		done <- result{resp: resp, err: err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("conn B: %v", r.err)
		}
		if r.resp.Status != kvwire.StatusOK {
			t.Fatalf("conn B PUT: %v", r.resp.Status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("conn B starved: the idle conn A never released its slots")
	}

	// Conn A reacquires transparently after its idle release.
	if resp := a.get(1); resp.Status != kvwire.StatusOK || string(resp.Body) != "one" {
		t.Fatalf("conn A GET after idle release: status=%v body=%q", resp.Status, resp.Body)
	}

	// Once both connections idle past IdleHold, every slot returns to the
	// registries.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SlotsLive != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slots still live on idle connections: %d", srv.Stats().SlotsLive)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerCloseIdempotentAndStartAfterClose(t *testing.T) {
	srv, _ := startServer(t, kvservice.Config{})
	srv.Close()
	srv.Close() // must not panic or deadlock
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Fatal("Start after Close succeeded")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := kvservice.New(kvservice.Config{Scheme: "bogus"}); err == nil {
		t.Fatal("New accepted an unknown scheme")
	}
	if _, err := kvservice.New(kvservice.Config{Partitions: -1}); err == nil {
		t.Fatal("New accepted negative Partitions")
	}
	if _, err := kvservice.New(kvservice.Config{MaxConns: -1}); err == nil {
		t.Fatal("New accepted negative MaxConns")
	}
	if _, err := kvservice.New(kvservice.Config{Burst: -1}); err == nil {
		t.Fatal("New accepted negative Burst")
	}
	if _, err := kvservice.New(kvservice.Config{IdleHold: -time.Millisecond}); err == nil {
		t.Fatal("New accepted negative IdleHold")
	}
}
