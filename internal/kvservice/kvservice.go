// Package kvservice implements the TCP key-value server behind cmd/kvserver:
// a network front-end over N partitioned internal/ds/hashmap namespaces, each
// partition with its own Record Manager, speaking the internal/kvwire
// protocol (GET/PUT/DEL/STATS; docs/PROTOCOL.md).
//
// The request path is batch-oriented: every complete frame already buffered
// on a connection (up to Config.PipelineDepth) is decoded into one batch,
// executed under a single slot acquisition with each partition's handle
// entered once, and answered with a single flushed write — so a pipelining
// client amortises the per-request syscall and framing cost, and the
// steady-state GET/PUT path performs no per-request heap allocation
// (per-connection reusable buffers plus an arena for stored values; see
// alloc_test.go for the enforced bounds).
//
// The server is the library's deployment story made concrete (the paper
// pitches epoch-based reclamation exactly at long-running services, where
// reclamation stalls surface as tail latency). Every connection goroutine
// lives the PR 5 churn contract: it binds a worker slot in every partition
// for a bounded burst of requests (Config.Burst) and releases the slots back
// at the burst boundary — or after Config.IdleHold of inbound silence, so a
// connection that stops sending mid-burst gives its slots back too. A server
// can therefore admit far more connections over its lifetime than it has
// worker slots: an idle or slow connection holds nothing and cannot stall
// reclamation (or starve the slot-waiting connections) for the others.
//
// The server degrades gracefully under faults and overload: every read and
// write carries a deadline (Config.ReadTimeout/WriteTimeout), slot
// acquisition is bounded (Config.AcquireWait, Config.AcquireQueue) with an
// ERR_BUSY fast-fail instead of an unbounded wait, and a background reaper
// closes peers that complete no frame within Config.ReapAfter — so a dead,
// stalled or malicious peer can never park a handler goroutine or the
// worker slots it would bind. See docs/ARCHITECTURE.md for where this sits
// in the Record Manager stack and docs/OPERATIONS.md ("Fault tolerance")
// for operating guidance.
package kvservice

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ds/hashmap"
	"repro/internal/kvwire"
	"repro/internal/recordmgr"
)

// Config describes the server to build. The zero value is not usable; see
// the field defaults applied by New.
type Config struct {
	// Scheme is the reclamation scheme every partition uses (recordmgr
	// scheme names; defaults to "debra").
	Scheme string
	// Partitions is the number of independent map namespaces, each with its
	// own Record Manager (defaults to 1). Keys route by hash.
	Partitions int
	// MaxConns is each partition's worker-slot capacity: the number of
	// connections that can hold a burst concurrently. Admitted connections
	// beyond it wait for a vacant slot at their next burst, so it bounds
	// reclamation's visible thread count, not the accept rate. Defaults to 8.
	MaxConns int
	// Burst is how many requests a connection serves per slot hold before
	// releasing its handles back to the registries (defaults to 64). A
	// pipelined batch is never split across the boundary, so a hold may
	// overshoot by at most PipelineDepth-1 requests.
	Burst int
	// PipelineDepth caps how many complete request frames already buffered
	// on a connection the server decodes and executes as one batch: one slot
	// acquisition, one handle resolution per partition and one response
	// write for the whole batch (docs/PROTOCOL.md, "Pipelining"). Clients
	// that do not pipeline always see batches of one; the cap only bounds
	// how much a pipelining client can amortise per syscall. Defaults to 32.
	PipelineDepth int
	// IdleHold bounds how long a connection may stall (no inbound byte)
	// while holding worker slots mid-burst — idle between frames or stuck in
	// the middle of one, either way the handles are released past it and
	// reacquired when the frame completes (defaults to 5ms). The bound is a
	// liveness requirement, not a tuning knob: slots are a multiplexed
	// resource, and a connection that parks with its handles bound would
	// starve every connection waiting in acquire — forever, since nothing
	// else frees a slot. It bounds only slot tenure: the connection itself,
	// and any frame in flight, live under ReadTimeout.
	IdleHold time.Duration
	// UsePool recycles reclaimed nodes through the record pool (default
	// false; set it for steady-state serving).
	UsePool bool
	// Shards, Placement, RetireBatch and Reclaimers configure each
	// partition's Record Manager exactly as in recordmgr.Config.
	Shards      int
	Placement   core.ShardPlacement
	RetireBatch int
	Reclaimers  int
	// Adaptive attaches the self-tuning controller to every partition's
	// Record Manager (recordmgr.Config.Adaptive): effective shards, retire
	// batches and active reclaimers then track the live connection load
	// instead of staying pinned at the knobs above. AdaptiveInterval is the
	// controller's decision period (0 = core.DefaultControllerInterval).
	Adaptive         bool
	AdaptiveInterval time.Duration
	// InitialBuckets sizes each partition's bucket table (0 = map default).
	InitialBuckets int

	// ReadTimeout bounds how long a connection may take to deliver one
	// complete request frame, absolute from the frame's first byte, and also
	// how long an unbound connection may sit silent between frames. A peer
	// that stalls mid-frame — or trickles bytes — is dropped once it
	// expires, so a dead peer can never park a handler goroutine forever
	// (its worker slots were already released after IdleHold); a slow but
	// live peer inside the budget is served. Defaults to 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write, so a peer that stops reading
	// cannot wedge a handler behind a full TCP window. Defaults to 10s.
	WriteTimeout time.Duration
	// AcquireWait bounds how long a request may wait for a worker slot
	// before the server fast-fails it with ERR_BUSY (kvwire.StatusBusy).
	// The connection stays open — framing is intact — and the client is
	// expected to back off and retry. Defaults to 100ms.
	AcquireWait time.Duration
	// AcquireQueue bounds how many connections may wait for slots at once:
	// past it a request is shed with ERR_BUSY immediately, without waiting,
	// so overload degrades to fast rejections instead of an unbounded
	// convoy of spinning handlers. Defaults to 4*MaxConns.
	AcquireQueue int
	// ReapAfter is the slow-peer reaper's threshold: a connection that
	// completes no request frame for this long is closed by a background
	// watchdog, independently of the per-read deadlines above (defense in
	// depth: it bounds handler lifetime even under a ReadTimeout tuned for
	// patient clients). Defaults to 2*ReadTimeout.
	ReapAfter time.Duration
}

// withDefaults returns cfg with unset fields defaulted.
func (cfg Config) withDefaults() Config {
	if cfg.Scheme == "" {
		cfg.Scheme = recordmgr.SchemeDEBRA
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 1
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 8
	}
	if cfg.Burst == 0 {
		cfg.Burst = 64
	}
	if cfg.PipelineDepth == 0 {
		cfg.PipelineDepth = 32
	}
	if cfg.IdleHold == 0 {
		cfg.IdleHold = 5 * time.Millisecond
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.AcquireWait == 0 {
		cfg.AcquireWait = 100 * time.Millisecond
	}
	if cfg.AcquireQueue == 0 {
		cfg.AcquireQueue = 4 * cfg.MaxConns
	}
	if cfg.ReapAfter == 0 {
		cfg.ReapAfter = 2 * cfg.ReadTimeout
	}
	return cfg
}

// tally is one connection's operation counters, merged into the server's
// totals at burst boundaries and connection end (the single-writer counter
// discipline: no shared atomics on the request path).
type tally struct {
	gets, getHits     int64
	puts, putReplaced int64
	dels, delHits     int64
	statsReqs         int64
	busy, shed        int64
	batches           int64
	writeErrs         int64
}

func (t *tally) add(o tally) {
	t.gets += o.gets
	t.getHits += o.getHits
	t.puts += o.puts
	t.putReplaced += o.putReplaced
	t.dels += o.dels
	t.delHits += o.delHits
	t.statsReqs += o.statsReqs
	t.busy += o.busy
	t.shed += o.shed
	t.batches += o.batches
	t.writeErrs += o.writeErrs
}

// Server is a running KV service. Construct with New, start with Serve or
// Start, stop with Close.
type Server struct {
	cfg Config
	pm  *hashmap.Partitioned[[]byte]

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]*connInfo
	totals  tally
	waiters int
	reaped  int64
	closed  bool

	stopReap chan struct{}
	handlers sync.WaitGroup
	acceptWG sync.WaitGroup
}

// connInfo is the server's per-connection watchdog state.
type connInfo struct {
	// lastFrame is the UnixNano timestamp of the connection's last completed
	// request frame (its admit time before the first), read by the reaper.
	lastFrame atomic.Int64
}

// New builds a server: Partitions independent maps, each on its own Record
// Manager configured per cfg.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("kvservice: Partitions must be >= 1, got %d", cfg.Partitions)
	}
	if cfg.MaxConns < 1 {
		return nil, fmt.Errorf("kvservice: MaxConns must be >= 1, got %d", cfg.MaxConns)
	}
	if cfg.Burst < 1 {
		return nil, fmt.Errorf("kvservice: Burst must be >= 1, got %d", cfg.Burst)
	}
	if cfg.PipelineDepth < 1 {
		return nil, fmt.Errorf("kvservice: PipelineDepth must be >= 1, got %d", cfg.PipelineDepth)
	}
	if cfg.IdleHold < 0 {
		return nil, fmt.Errorf("kvservice: IdleHold must be >= 0, got %v", cfg.IdleHold)
	}
	if cfg.ReadTimeout <= 0 || cfg.WriteTimeout <= 0 || cfg.AcquireWait <= 0 || cfg.ReapAfter <= 0 {
		return nil, fmt.Errorf("kvservice: ReadTimeout/WriteTimeout/AcquireWait/ReapAfter must be > 0")
	}
	if cfg.AcquireQueue < 1 {
		return nil, fmt.Errorf("kvservice: AcquireQueue must be >= 1, got %d", cfg.AcquireQueue)
	}
	// Build partition 0's manager first so configuration errors surface as
	// errors rather than panics out of the builder callback.
	mcfg := recordmgr.Config{
		Scheme:           cfg.Scheme,
		Threads:          1,
		MaxThreads:       cfg.MaxConns,
		Allocator:        recordmgr.AllocBump,
		UsePool:          cfg.UsePool,
		Shards:           cfg.Shards,
		Placement:        cfg.Placement,
		RetireBatch:      cfg.RetireBatch,
		Reclaimers:       cfg.Reclaimers,
		Adaptive:         cfg.Adaptive,
		AdaptiveInterval: cfg.AdaptiveInterval,
	}
	probe, err := recordmgr.Build[hashmap.Node[[]byte]](mcfg)
	if err != nil {
		return nil, fmt.Errorf("kvservice: %w", err)
	}
	// The probe exists only to surface configuration errors; Close it so the
	// goroutines a valid configuration starts (async reclaimers, the adaptive
	// controller) do not outlive the check.
	probe.Close()
	var opts []hashmap.Option
	if cfg.InitialBuckets > 0 {
		opts = append(opts, hashmap.WithInitialBuckets(cfg.InitialBuckets))
	}
	pm := hashmap.NewPartitioned(cfg.Partitions, func(int) *hashmap.Manager[[]byte] {
		return recordmgr.MustBuild[hashmap.Node[[]byte]](mcfg)
	}, cfg.MaxConns, opts...)
	return &Server{
		cfg:      cfg,
		pm:       pm,
		conns:    make(map[net.Conn]*connInfo),
		stopReap: make(chan struct{}),
	}, nil
}

// Config returns the server's effective configuration (defaults applied).
func (s *Server) Config() Config { return s.cfg }

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// connections on background goroutines until Close. It returns the bound
// address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvservice: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("kvservice: server is closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("kvservice: server already started")
	}
	s.ln = ln
	s.mu.Unlock()
	s.acceptWG.Add(2)
	go s.acceptLoop(ln)
	go s.reapLoop()
	return ln.Addr(), nil
}

// acceptLoop admits connections until the listener is closed.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.acceptWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // Close closed the listener
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		info := &connInfo{}
		info.lastFrame.Store(time.Now().UnixNano())
		s.conns[conn] = info
		s.handlers.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn, info)
	}
}

// reapLoop is the slow-peer watchdog: it periodically closes connections
// that have not completed a request frame within ReapAfter. Closing the
// socket fails the handler's blocked read, which unwinds it through the
// normal exit path (slots released, counters merged) — a reaped peer can
// therefore never hold a handler goroutine or its worker slots forever.
func (s *Server) reapLoop() {
	defer s.acceptWG.Done()
	interval := s.cfg.ReapAfter / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopReap:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-s.cfg.ReapAfter).UnixNano()
		var doomed []net.Conn
		s.mu.Lock()
		for conn, info := range s.conns {
			if info.lastFrame.Load() < cutoff {
				doomed = append(doomed, conn)
			}
		}
		s.reaped += int64(len(doomed))
		s.mu.Unlock()
		for _, conn := range doomed {
			conn.Close()
		}
	}
}

// Close stops accepting, closes every open connection, waits for the
// handlers to unwind (releasing their slots), and shuts every partition's
// reclamation pipeline down. After Close, Stats().Manager satisfies
// Retired == Freed for every reclaiming scheme — the repo-wide shutdown
// invariant, now holding for a network service. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.acceptWG.Wait()
		s.handlers.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	close(s.stopReap)
	if ln != nil {
		ln.Close()
	}
	s.acceptWG.Wait()
	s.handlers.Wait()
	s.pm.Close()
}

// connState is one connection's reusable I/O state: the inbound
// accumulation buffer the batch decoder drains, the decoded request batch,
// its execution results, and the staged response bytes. Everything here is
// recycled across batches, which is what makes the steady-state GET/PUT path
// allocation-free (enforced by the AllocsPerRun tests in alloc_test.go).
type connState struct {
	in   []byte // inbound byte accumulator; [r,w) holds unconsumed bytes
	r, w int

	reqs    []kvwire.Request // decoded batch (values alias in)
	parts   []int            // reqs[i]'s partition, when grouping
	results []reqResult      // reqs[i]'s outcome, emitted in request order

	out   []byte   // staged response bytes, flushed once per batch
	big   [][]byte // large bodies spliced into the write vector uncopied
	marks []int    // out offsets where big[i] splices in
	vecs  [][]byte // write-vector assembly scratch (net.Buffers)

	flagByte [1]byte    // scratch for 1-byte PUT/DEL flag bodies
	arena    valueArena // owns the memory of stored PUT values
}

// reqResult is one request's outcome, buffered so a partition-grouped batch
// can execute out of request order but respond in it.
type reqResult struct {
	status kvwire.Status
	body   []byte // GET hit value (aliases the stored value); nil otherwise
	flag   byte   // PUT replaced / DEL existed flag
	isFlag bool   // the response body is the single flag byte
}

// bigBodyMin is the response-body size past which flush splices the body
// into the write vector (net.Buffers) instead of copying it through the
// staging buffer.
const bigBodyMin = 2048

// valueArena carves stored map values out of large chunks, so a steady-state
// PUT costs one bulk allocation per ~64 KiB of value bytes instead of one
// allocation per request. Carved regions are never reused: a chunk's memory
// is owned by the values cut from it and reclaimed by the garbage collector
// when the map no longer references them.
type valueArena struct {
	chunk []byte
}

// arenaChunkSize is the arena's allocation granule.
const arenaChunkSize = 64 << 10

// emptyValue is the shared backing for zero-length PUT values.
var emptyValue = []byte{}

// copyOf returns a stable copy of v carved from the arena.
func (a *valueArena) copyOf(v []byte) []byte {
	n := len(v)
	if n == 0 {
		return emptyValue
	}
	if n > len(a.chunk) {
		size := arenaChunkSize
		if n > size {
			size = n
		}
		a.chunk = make([]byte, size)
	}
	dst := a.chunk[:n:n]
	a.chunk = a.chunk[n:]
	copy(dst, v)
	return dst
}

// serveConn runs one connection batch-at-a-time: decode every complete
// request frame already buffered (up to PipelineDepth), execute the batch
// under one slot acquisition — entering each partition's handle once, not
// once per request — and flush every response with a single write. Handles
// go back to the registries every Burst requests, or sooner when the peer
// goes quiet mid-burst (IdleHold). Every read and write carries a deadline
// (ReadTimeout/WriteTimeout), so a dead or wedged peer cannot park this
// goroutine — or slots it would bind — forever. Clients that do not
// pipeline see batches of one and exactly the PR 6 request-per-round-trip
// behaviour.
func (s *Server) serveConn(conn net.Conn, info *connInfo) {
	defer s.handlers.Done()
	h := s.pm.NewHandle()
	cs := &connState{in: make([]byte, 4096)}
	var (
		local      tally
		served     int       // requests under the current slot hold
		frameStart time.Time // first byte of the oldest incomplete frame
	)
	releaseSlots := func() {
		h.Release()
		served = 0
		s.mu.Lock()
		s.totals.add(local)
		s.mu.Unlock()
		local = tally{}
	}
	defer func() {
		if h.Bound() {
			h.Release()
		}
		s.mu.Lock()
		s.totals.add(local)
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		// Drain the accumulator: every complete frame already buffered
		// becomes one batch. The decoded values alias cs.in, which is not
		// touched again until the batch has executed and flushed.
		var consumed int
		var decErr error
		cs.reqs, consumed, decErr = kvwire.DecodeRequests(cs.reqs[:0], cs.in[cs.r:cs.w], s.cfg.PipelineDepth)
		if len(cs.reqs) == 0 && decErr == nil {
			// No complete frame buffered: read more bytes under the two
			// liveness bounds. IdleHold bounds slot tenure alone — while the
			// connection is bound, read attempts run in IdleHold slices, and
			// the first expiry (idle at a frame boundary or stalled mid-frame
			// alike) releases the slots and drops to the patient regime.
			// ReadTimeout bounds the frame, absolute from its first byte, so
			// a peer that goes silent or trickles bytes mid-frame is dropped
			// when it expires; an unbound connection with no frame in flight
			// gets ReadTimeout of patience before it is dropped as dead.
			if err := s.fill(conn, cs, h.Bound(), &frameStart, releaseSlots); err != nil {
				return
			}
			continue
		}
		cs.r += consumed
		if len(cs.reqs) > 0 {
			info.lastFrame.Store(time.Now().UnixNano())
			if !h.Bound() {
				res, shed := s.acquire(h)
				switch res {
				case acquireOK:
				case acquireBusy:
					// Overload fast-fail: no slot within the bound. The
					// framing is intact and the batch was simply not
					// executed, so the connection survives — answer ERR_BUSY
					// for every request in it and read on.
					local.busy += int64(len(cs.reqs))
					if shed {
						local.shed += int64(len(cs.reqs))
					}
					for range cs.reqs {
						cs.out = kvwire.AppendResponse(cs.out, kvwire.StatusBusy, nil)
					}
				case acquireClosing:
					return
				}
			}
			if h.Bound() {
				local.batches++
				s.executeBatch(cs, h, &local)
				served += len(cs.reqs)
			}
			if err := cs.flush(conn, s.cfg.WriteTimeout); err != nil {
				local.writeErrs++
				return
			}
			if served >= s.cfg.Burst && h.Bound() {
				// Burst boundary: give the slots back and surface this
				// connection's counters (the only synchronised stats touch).
				releaseSlots()
			}
		}
		if decErr != nil {
			// Protocol violation mid-stream. The responses for the frames
			// before the bad one were flushed above; the peer is owed the
			// diagnostic as the last frame on the wire before the drop.
			cs.out = kvwire.AppendResponse(cs.out[:0], kvwire.StatusErr, []byte(decErr.Error()))
			if err := cs.flush(conn, s.cfg.WriteTimeout); err != nil {
				local.writeErrs++
			}
			return
		}
		if cs.r == cs.w {
			// Fully drained: rewind the accumulator and clear the
			// frame-in-flight clock.
			cs.r, cs.w = 0, 0
			frameStart = time.Time{}
		} else if len(cs.reqs) > 0 {
			// A partial frame trails the batch we just served; its budget
			// runs from now (its bytes arrived with the batch, so this is
			// within a batch's service time of the true first-byte time).
			frameStart = time.Now()
		}
	}
}

// fill runs one read attempt into cs.in under the deadline regime the
// connection is in (see serveConn). A timeout while bound releases the slots
// via releaseSlots and returns nil so the caller retries under the patient
// regime; any other failure with no bytes delivered is fatal. frameStart is
// maintained as the arrival time of the oldest incomplete frame's first
// byte.
func (s *Server) fill(conn net.Conn, cs *connState, bound bool, frameStart *time.Time, releaseSlots func()) error {
	started := cs.r < cs.w
	switch {
	case !started && bound:
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleHold))
	case !started:
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	case bound:
		// Mid-frame with slots held: the next stall releases them, but
		// never stretch past the frame's absolute budget.
		d := time.Now().Add(s.cfg.IdleHold)
		if abs := frameStart.Add(s.cfg.ReadTimeout); abs.Before(d) {
			d = abs
		}
		conn.SetReadDeadline(d)
	default:
		conn.SetReadDeadline(frameStart.Add(s.cfg.ReadTimeout))
	}
	if cs.w == len(cs.in) {
		if cs.r > 0 {
			// Reclaim the consumed prefix. Nothing aliases it here: fill
			// only runs when no complete frame is buffered, so [r,w) is at
			// most one partial frame and the previous batch's requests are
			// dead.
			cs.w = copy(cs.in, cs.in[cs.r:cs.w])
			cs.r = 0
		} else {
			// One frame outgrew the accumulator (bounded by the kvwire
			// frame cap, prefix + MaxPayload).
			grown := make([]byte, 2*len(cs.in))
			copy(grown, cs.in[:cs.w])
			cs.in = grown
		}
	}
	n, err := conn.Read(cs.in[cs.w:])
	cs.w += n
	if n > 0 {
		if frameStart.IsZero() {
			*frameStart = time.Now()
		}
		// Deliver what arrived; a real error sticks and resurfaces on the
		// next read attempt.
		return nil
	}
	if err == nil {
		return nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() && bound {
		releaseSlots()
		return nil
	}
	// Clean EOF, peer reset, or a liveness deadline on an unbound
	// connection: the conversation is over.
	return err
}

// executeBatch executes cs.reqs under the bound handle and stages every
// response, in request order, for one flush. Batches of pure data-plane
// operations (GET/PUT/DEL) on a multi-partition map execute grouped by
// partition — each partition's handle is resolved once per batch — which
// reorders execution across partitions but never within one; since a key
// always routes to the same partition, per-key operation order is exactly
// request order. A batch containing STATS (whose inline snapshot must see
// the requests before it) falls back to strict request-order execution.
func (s *Server) executeBatch(cs *connState, h *hashmap.PartitionedHandle[[]byte], local *tally) {
	for i := range cs.reqs {
		if op := cs.reqs[i].Op; op != kvwire.OpGet && op != kvwire.OpPut && op != kvwire.OpDel {
			for j := range cs.reqs {
				cs.out = s.serveRequest(cs.out, h, cs.reqs[j], local, &cs.arena)
			}
			return
		}
	}
	if cap(cs.results) < len(cs.reqs) {
		cs.results = make([]reqResult, len(cs.reqs))
	}
	cs.results = cs.results[:len(cs.reqs)]
	if s.cfg.Partitions > 1 && len(cs.reqs) > 1 {
		// Route every request once, then enter each partition exactly once
		// and run its requests in arrival order.
		cs.parts = cs.parts[:0]
		for i := range cs.reqs {
			cs.parts = append(cs.parts, s.pm.PartitionFor(cs.reqs[i].Key))
		}
		for p := 0; p < s.cfg.Partitions; p++ {
			hd := h.Part(p)
			for i := range cs.reqs {
				if cs.parts[i] == p {
					cs.results[i] = executeOne(hd, cs.reqs[i], &cs.arena, local)
				}
			}
		}
	} else {
		for i := range cs.reqs {
			hd := h.Part(s.pm.PartitionFor(cs.reqs[i].Key))
			cs.results[i] = executeOne(hd, cs.reqs[i], &cs.arena, local)
		}
	}
	for i := range cs.results {
		cs.emit(&cs.results[i])
	}
}

// executeOne runs one data-plane request against its partition's handle.
func executeOne(hd *hashmap.Handle[[]byte], req kvwire.Request, arena *valueArena, local *tally) reqResult {
	switch req.Op {
	case kvwire.OpGet:
		local.gets++
		if v, ok := hd.Get(req.Key); ok {
			local.getHits++
			return reqResult{status: kvwire.StatusOK, body: v}
		}
		return reqResult{status: kvwire.StatusNotFound}
	case kvwire.OpPut:
		local.puts++
		_, replaced := hd.Upsert(req.Key, arena.copyOf(req.Value))
		r := reqResult{status: kvwire.StatusOK, isFlag: true}
		if replaced {
			local.putReplaced++
			r.flag = 1
		}
		return r
	default: // kvwire.OpDel — executeBatch admits no other opcode
		local.dels++
		r := reqResult{status: kvwire.StatusOK, isFlag: true}
		if hd.Delete(req.Key) {
			local.delHits++
			r.flag = 1
		}
		return r
	}
}

// emit stages one response. Small bodies are copied into the staging buffer;
// bodies past bigBodyMin are framed there but spliced into the write vector
// uncopied (flush turns the splice points into a net.Buffers vectored
// write).
func (cs *connState) emit(r *reqResult) {
	switch {
	case r.isFlag:
		cs.flagByte[0] = r.flag
		cs.out = kvwire.AppendResponse(cs.out, r.status, cs.flagByte[:])
	case len(r.body) >= bigBodyMin:
		cs.out = kvwire.AppendResponseHeader(cs.out, r.status, len(r.body))
		cs.marks = append(cs.marks, len(cs.out))
		cs.big = append(cs.big, r.body)
	default:
		cs.out = kvwire.AppendResponse(cs.out, r.status, r.body)
	}
}

// flush writes every staged response in one call: a plain Write when all
// bodies were copied into the staging buffer, a net.Buffers vectored write
// when large bodies were spliced in. The whole batch shares one
// WriteTimeout, like the single response it replaces on the wire.
func (cs *connState) flush(conn net.Conn, timeout time.Duration) error {
	if len(cs.out) == 0 && len(cs.big) == 0 {
		return nil
	}
	conn.SetWriteDeadline(time.Now().Add(timeout))
	var err error
	if len(cs.big) == 0 {
		_, err = conn.Write(cs.out)
	} else {
		vecs := cs.vecs[:0]
		prev := 0
		for i, m := range cs.marks {
			if m > prev {
				vecs = append(vecs, cs.out[prev:m])
			}
			vecs = append(vecs, cs.big[i])
			prev = m
		}
		if prev < len(cs.out) {
			vecs = append(vecs, cs.out[prev:])
		}
		bufs := net.Buffers(vecs)
		_, err = bufs.WriteTo(conn)
		cs.vecs = vecs[:0]
		for i := range cs.big {
			cs.big[i] = nil // drop the stored-value references
		}
		cs.big = cs.big[:0]
		cs.marks = cs.marks[:0]
	}
	cs.out = cs.out[:0]
	return err
}

// acquireResult is acquire's outcome.
type acquireResult int

const (
	// acquireOK: the handle is bound.
	acquireOK acquireResult = iota
	// acquireBusy: no slot within the policy bounds — answer ERR_BUSY.
	acquireBusy
	// acquireClosing: the server is shutting down — drop the connection.
	acquireClosing
)

// acquire binds h with backoff, waiting out transient slot exhaustion
// (connections beyond MaxConns queue here between bursts) — but only within
// the overload policy's bounds: at most AcquireWait of waiting, and at most
// AcquireQueue connections waiting at once (past it the batch is shed
// immediately; shed reports that subset). The caller counts the overload
// outcomes per request — one ERR_BUSY response per request in the rejected
// batch — so the busy/shed counters keep meaning "responses sent".
func (s *Server) acquire(h *hashmap.PartitionedHandle[[]byte]) (res acquireResult, shed bool) {
	if h.TryAcquire() {
		return acquireOK, false
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return acquireClosing, false
	}
	if s.waiters >= s.cfg.AcquireQueue {
		s.mu.Unlock()
		return acquireBusy, true
	}
	s.waiters++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.waiters--
		s.mu.Unlock()
	}()
	deadline := time.Now().Add(s.cfg.AcquireWait)
	for wait := time.Microsecond; ; {
		if h.TryAcquire() {
			return acquireOK, false
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return acquireClosing, false
		}
		if !time.Now().Before(deadline) {
			return acquireBusy, false
		}
		time.Sleep(wait)
		if wait < time.Millisecond {
			wait *= 2
		}
	}
}

// serveRequest appends req's response frame to out: the strict
// request-order execution path, used for batches that carry a STATS request
// (whose inline snapshot must observe the operations before it in the same
// batch). Mutating requests copy their value bytes into the arena before the
// map sees them (the inbound buffer is reused; stored values must own their
// memory).
func (s *Server) serveRequest(out []byte, h *hashmap.PartitionedHandle[[]byte], req kvwire.Request, local *tally, arena *valueArena) []byte {
	switch req.Op {
	case kvwire.OpGet:
		local.gets++
		if v, ok := h.Get(req.Key); ok {
			local.getHits++
			return kvwire.AppendResponse(out, kvwire.StatusOK, v)
		}
		return kvwire.AppendResponse(out, kvwire.StatusNotFound, nil)
	case kvwire.OpPut:
		local.puts++
		_, replaced := h.Upsert(req.Key, arena.copyOf(req.Value))
		flag := byte(0)
		if replaced {
			local.putReplaced++
			flag = 1
		}
		return kvwire.AppendResponse(out, kvwire.StatusOK, []byte{flag})
	case kvwire.OpDel:
		local.dels++
		flag := byte(0)
		if h.Delete(req.Key) {
			local.delHits++
			flag = 1
		}
		return kvwire.AppendResponse(out, kvwire.StatusOK, []byte{flag})
	case kvwire.OpStats:
		local.statsReqs++
		body, err := json.Marshal(s.snapshotLocked(local))
		if err != nil {
			return kvwire.AppendResponse(out, kvwire.StatusErr, []byte(err.Error()))
		}
		return kvwire.AppendResponse(out, kvwire.StatusOK, body)
	default:
		return kvwire.AppendResponse(out, kvwire.StatusErr, []byte(kvwire.ErrUnknownOp.Error()))
	}
}

// Snapshot is the server's statistics document: the STATS response body and
// the shape Stats returns. Counters are exact for quiesced traffic and
// at-least-as-of-last-burst for connections mid-burst (their local tallies
// merge at burst boundaries).
type Snapshot struct {
	Scheme     string `json:"scheme"`
	Partitions int    `json:"partitions"`
	OpenConns  int    `json:"open_conns"`
	// SlotCapacity is each partition's worker-slot capacity (MaxConns);
	// SlotsLive is the currently bound slot count summed over partitions.
	SlotCapacity int `json:"slot_capacity"`
	SlotsLive    int `json:"slots_live"`
	// Keys is the summed element count over partitions.
	Keys int `json:"keys"`

	Gets        int64 `json:"gets"`
	GetHits     int64 `json:"get_hits"`
	Puts        int64 `json:"puts"`
	PutReplaced int64 `json:"put_replaced"`
	Dels        int64 `json:"dels"`
	DelHits     int64 `json:"del_hits"`
	StatsReqs   int64 `json:"stats_reqs"`

	// Busy counts ERR_BUSY fast-fail responses (no worker slot within the
	// overload policy's bounds); Shed is the subset rejected immediately
	// because the acquire queue was already at AcquireQueue waiters.
	// ReapedConns counts connections the slow-peer watchdog closed.
	Busy        int64 `json:"busy"`
	Shed        int64 `json:"shed"`
	ReapedConns int64 `json:"reaped_conns"`

	// Batches counts executed request batches (one slot hold, one response
	// flush each): (gets+puts+dels+stats_reqs)/batches is the mean pipelined
	// batch size. WriteErrors counts response writes that failed, each of
	// which dropped its connection.
	Batches     int64 `json:"batches"`
	WriteErrors int64 `json:"write_errors"`

	Manager ManagerSnapshot `json:"manager"`

	// Adaptive holds one entry per partition's self-tuning controller
	// (Config.Adaptive); empty when the server runs with static knobs.
	Adaptive []ControllerSnapshot `json:"adaptive,omitempty"`
}

// ControllerSnapshot is one partition controller's current lever positions
// and activity counters (see core.Controller).
type ControllerSnapshot struct {
	// EffectiveShards, RetireBatch and ActiveReclaimers are the current
	// lever positions (RetireBatch 0 when batching is off, ActiveReclaimers
	// 0 when reclamation is synchronous).
	EffectiveShards  int `json:"effective_shards"`
	RetireBatch      int `json:"retire_batch"`
	ActiveReclaimers int `json:"active_reclaimers"`
	// Live is the partition's bound worker-slot count at the controller's
	// last observation.
	Live int `json:"live"`
	// Steps and Decisions count control steps taken and lever writes made
	// (a converged controller steps often and decides rarely).
	Steps     int   `json:"steps"`
	Decisions int64 `json:"decisions"`
}

// ManagerSnapshot is the reclamation half of a Snapshot, summed over the
// partitions' Record Managers.
type ManagerSnapshot struct {
	Retired         int64 `json:"retired"`
	Freed           int64 `json:"freed"`
	Limbo           int64 `json:"limbo"`
	Unreclaimed     int64 `json:"unreclaimed"`
	EpochAdvances   int64 `json:"epoch_advances"`
	Scans           int64 `json:"scans"`
	Neutralizations int64 `json:"neutralizations"`
	Allocated       int64 `json:"allocated"`
	AllocatedBytes  int64 `json:"allocated_bytes"`
	PoolReused      int64 `json:"pool_reused"`
}

// Stats returns the server's statistics document (same content as a STATS
// response). Safe to call while serving and after Close.
func (s *Server) Stats() Snapshot {
	return s.snapshotLocked(nil)
}

// snapshotLocked builds a Snapshot, folding in the calling connection's
// unmerged tally when inline is non-nil (so a connection's own STATS request
// sees its own preceding operations).
func (s *Server) snapshotLocked(inline *tally) Snapshot {
	s.mu.Lock()
	t := s.totals
	open := len(s.conns)
	reaped := s.reaped
	s.mu.Unlock()
	if inline != nil {
		t.add(*inline)
	}
	live := 0
	var adaptive []ControllerSnapshot
	for p := 0; p < s.pm.Partitions(); p++ {
		m := s.pm.Partition(p).Manager()
		live += m.SlotRegistry().Live()
		if c := m.Controller(); c != nil {
			cs := ControllerSnapshot{
				EffectiveShards: m.SlotRegistry().EffectiveShards(),
				Steps:           c.Steps(),
				Decisions:       c.Decisions(),
			}
			if last, ok := c.Last(); ok {
				cs.RetireBatch = last.RetireBatch
				cs.ActiveReclaimers = last.ActiveReclaimers
				cs.Live = last.Live
			}
			adaptive = append(adaptive, cs)
		}
	}
	ms := s.pm.ManagerStats()
	return Snapshot{
		Scheme:       s.cfg.Scheme,
		Partitions:   s.cfg.Partitions,
		OpenConns:    open,
		SlotCapacity: s.cfg.MaxConns,
		SlotsLive:    live,
		Keys:         s.pm.Count(),
		Gets:         t.gets,
		GetHits:      t.getHits,
		Puts:         t.puts,
		PutReplaced:  t.putReplaced,
		Dels:         t.dels,
		DelHits:      t.delHits,
		StatsReqs:    t.statsReqs,
		Busy:         t.busy,
		Shed:         t.shed,
		ReapedConns:  reaped,
		Batches:      t.batches,
		WriteErrors:  t.writeErrs,
		Adaptive:     adaptive,
		Manager: ManagerSnapshot{
			Retired:         ms.Reclaimer.Retired,
			Freed:           ms.Reclaimer.Freed,
			Limbo:           ms.Reclaimer.Limbo,
			Unreclaimed:     ms.Unreclaimed,
			EpochAdvances:   ms.Reclaimer.EpochAdvances,
			Scans:           ms.Reclaimer.Scans,
			Neutralizations: ms.Reclaimer.Neutralizations,
			Allocated:       ms.Alloc.Allocated,
			AllocatedBytes:  ms.Alloc.AllocatedBytes,
			PoolReused:      ms.Pool.Reused,
		},
	}
}
