// Package kvservice implements the TCP key-value server behind cmd/kvserver:
// a network front-end over N partitioned internal/ds/hashmap namespaces, each
// partition with its own Record Manager, speaking the internal/kvwire
// protocol (GET/PUT/DEL/STATS; docs/PROTOCOL.md).
//
// The server is the library's deployment story made concrete (the paper
// pitches epoch-based reclamation exactly at long-running services, where
// reclamation stalls surface as tail latency). Every connection goroutine
// lives the PR 5 churn contract: it binds a worker slot in every partition
// for a bounded burst of requests (Config.Burst) and releases the slots back
// at the burst boundary — or after Config.IdleHold of inbound silence, so a
// connection that stops sending mid-burst gives its slots back too. A server
// can therefore admit far more connections over its lifetime than it has
// worker slots: an idle or slow connection holds nothing and cannot stall
// reclamation (or starve the slot-waiting connections) for the others. See
// docs/ARCHITECTURE.md for where this sits in the Record Manager stack and
// docs/OPERATIONS.md for operating guidance.
package kvservice

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ds/hashmap"
	"repro/internal/kvwire"
	"repro/internal/recordmgr"
)

// Config describes the server to build. The zero value is not usable; see
// the field defaults applied by New.
type Config struct {
	// Scheme is the reclamation scheme every partition uses (recordmgr
	// scheme names; defaults to "debra").
	Scheme string
	// Partitions is the number of independent map namespaces, each with its
	// own Record Manager (defaults to 1). Keys route by hash.
	Partitions int
	// MaxConns is each partition's worker-slot capacity: the number of
	// connections that can hold a burst concurrently. Admitted connections
	// beyond it wait for a vacant slot at their next burst, so it bounds
	// reclamation's visible thread count, not the accept rate. Defaults to 8.
	MaxConns int
	// Burst is how many requests a connection serves per slot hold before
	// releasing its handles back to the registries (defaults to 64).
	Burst int
	// IdleHold bounds how long a connection may sit idle (no inbound byte)
	// while holding worker slots mid-burst: past it the handles are released
	// and reacquired when the next request arrives (defaults to 5ms). The
	// bound is a liveness requirement, not a tuning knob: slots are a
	// multiplexed resource, and a connection that parks between requests
	// with its handles bound would starve every connection waiting in
	// acquire — forever, since nothing else frees a slot.
	IdleHold time.Duration
	// UsePool recycles reclaimed nodes through the record pool (default
	// false; set it for steady-state serving).
	UsePool bool
	// Shards, Placement, RetireBatch and Reclaimers configure each
	// partition's Record Manager exactly as in recordmgr.Config.
	Shards      int
	Placement   core.ShardPlacement
	RetireBatch int
	Reclaimers  int
	// Adaptive attaches the self-tuning controller to every partition's
	// Record Manager (recordmgr.Config.Adaptive): effective shards, retire
	// batches and active reclaimers then track the live connection load
	// instead of staying pinned at the knobs above. AdaptiveInterval is the
	// controller's decision period (0 = core.DefaultControllerInterval).
	Adaptive         bool
	AdaptiveInterval time.Duration
	// InitialBuckets sizes each partition's bucket table (0 = map default).
	InitialBuckets int
}

// withDefaults returns cfg with unset fields defaulted.
func (cfg Config) withDefaults() Config {
	if cfg.Scheme == "" {
		cfg.Scheme = recordmgr.SchemeDEBRA
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 1
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 8
	}
	if cfg.Burst == 0 {
		cfg.Burst = 64
	}
	if cfg.IdleHold == 0 {
		cfg.IdleHold = 5 * time.Millisecond
	}
	return cfg
}

// tally is one connection's operation counters, merged into the server's
// totals at burst boundaries and connection end (the single-writer counter
// discipline: no shared atomics on the request path).
type tally struct {
	gets, getHits     int64
	puts, putReplaced int64
	dels, delHits     int64
	statsReqs         int64
}

func (t *tally) add(o tally) {
	t.gets += o.gets
	t.getHits += o.getHits
	t.puts += o.puts
	t.putReplaced += o.putReplaced
	t.dels += o.dels
	t.delHits += o.delHits
	t.statsReqs += o.statsReqs
}

// Server is a running KV service. Construct with New, start with Serve or
// Start, stop with Close.
type Server struct {
	cfg Config
	pm  *hashmap.Partitioned[[]byte]

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	totals tally
	closed bool

	handlers sync.WaitGroup
	acceptWG sync.WaitGroup
}

// New builds a server: Partitions independent maps, each on its own Record
// Manager configured per cfg.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("kvservice: Partitions must be >= 1, got %d", cfg.Partitions)
	}
	if cfg.MaxConns < 1 {
		return nil, fmt.Errorf("kvservice: MaxConns must be >= 1, got %d", cfg.MaxConns)
	}
	if cfg.Burst < 1 {
		return nil, fmt.Errorf("kvservice: Burst must be >= 1, got %d", cfg.Burst)
	}
	if cfg.IdleHold < 0 {
		return nil, fmt.Errorf("kvservice: IdleHold must be >= 0, got %v", cfg.IdleHold)
	}
	// Build partition 0's manager first so configuration errors surface as
	// errors rather than panics out of the builder callback.
	mcfg := recordmgr.Config{
		Scheme:           cfg.Scheme,
		Threads:          1,
		MaxThreads:       cfg.MaxConns,
		Allocator:        recordmgr.AllocBump,
		UsePool:          cfg.UsePool,
		Shards:           cfg.Shards,
		Placement:        cfg.Placement,
		RetireBatch:      cfg.RetireBatch,
		Reclaimers:       cfg.Reclaimers,
		Adaptive:         cfg.Adaptive,
		AdaptiveInterval: cfg.AdaptiveInterval,
	}
	probe, err := recordmgr.Build[hashmap.Node[[]byte]](mcfg)
	if err != nil {
		return nil, fmt.Errorf("kvservice: %w", err)
	}
	// The probe exists only to surface configuration errors; Close it so the
	// goroutines a valid configuration starts (async reclaimers, the adaptive
	// controller) do not outlive the check.
	probe.Close()
	var opts []hashmap.Option
	if cfg.InitialBuckets > 0 {
		opts = append(opts, hashmap.WithInitialBuckets(cfg.InitialBuckets))
	}
	pm := hashmap.NewPartitioned(cfg.Partitions, func(int) *hashmap.Manager[[]byte] {
		return recordmgr.MustBuild[hashmap.Node[[]byte]](mcfg)
	}, cfg.MaxConns, opts...)
	return &Server{cfg: cfg, pm: pm, conns: make(map[net.Conn]struct{})}, nil
}

// Config returns the server's effective configuration (defaults applied).
func (s *Server) Config() Config { return s.cfg }

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// connections on background goroutines until Close. It returns the bound
// address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvservice: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("kvservice: server is closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("kvservice: server already started")
	}
	s.ln = ln
	s.mu.Unlock()
	s.acceptWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// acceptLoop admits connections until the listener is closed.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.acceptWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // Close closed the listener
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every open connection, waits for the
// handlers to unwind (releasing their slots), and shuts every partition's
// reclamation pipeline down. After Close, Stats().Manager satisfies
// Retired == Freed for every reclaiming scheme — the repo-wide shutdown
// invariant, now holding for a network service. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.acceptWG.Wait()
		s.handlers.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.acceptWG.Wait()
	s.handlers.Wait()
	s.pm.Close()
}

// serveConn runs one connection: decode a frame, serve it under the bound
// burst handles, answer, and release the handles every Burst requests — or
// sooner, when the peer goes quiet mid-burst (IdleHold).
func (s *Server) serveConn(conn net.Conn) {
	defer s.handlers.Done()
	h := s.pm.NewHandle()
	cr := &countingReader{r: conn}
	var (
		local  tally
		buf    []byte // frame read buffer, reused
		out    []byte // response write buffer, reused
		served int    // requests under the current hold
	)
	defer func() {
		if h.Bound() {
			h.Release()
		}
		s.mu.Lock()
		s.totals.add(local)
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		// A bound read carries the IdleHold deadline; an unbound connection
		// holds nothing and may idle forever, so its read blocks cleanly
		// (clearing any deadline a bound iteration armed).
		if h.Bound() {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleHold))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		cr.n = 0
		payload, err := kvwire.ReadFrame(cr, buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && h.Bound() && cr.n == 0 {
				// Idle between requests with slots held: give them back and
				// wait for the next frame without a deadline. A timeout with
				// bytes consumed is NOT recoverable — ReadFrame's partial
				// state is lost, so a peer that stalls mid-frame for a whole
				// IdleHold falls through and is dropped like any dead
				// connection.
				h.Release()
				served = 0
				s.mu.Lock()
				s.totals.add(local)
				s.mu.Unlock()
				local = tally{}
				continue
			}
			// Clean EOF, peer reset, or a frame-level protocol violation:
			// either way the conversation is over. For protocol violations we
			// owe the peer a diagnostic before dropping them.
			if errors.Is(err, kvwire.ErrFrameTooLarge) || errors.Is(err, kvwire.ErrEmptyFrame) {
				conn.Write(kvwire.AppendResponse(nil, kvwire.StatusErr, []byte(err.Error())))
			}
			return
		}
		buf = payload
		req, err := kvwire.DecodeRequest(payload)
		if err != nil {
			conn.Write(kvwire.AppendResponse(nil, kvwire.StatusErr, []byte(err.Error())))
			return
		}
		if !h.Bound() {
			if !s.acquire(h) {
				return // server closing
			}
		}
		out = s.serveRequest(out[:0], h, req, &local)
		if _, err := conn.Write(out); err != nil {
			return
		}
		if served++; served >= s.cfg.Burst {
			// Burst boundary: give the slots back and surface this
			// connection's counters (the only synchronised stats touch).
			h.Release()
			served = 0
			s.mu.Lock()
			s.totals.add(local)
			s.mu.Unlock()
			local = tally{}
		}
	}
}

// countingReader counts the bytes delivered since the last reset, letting
// serveConn distinguish "idle between frames" on a deadline expiry (nothing
// read — the slots can be released and the read retried) from "stalled
// mid-frame" (bytes consumed and lost with ReadFrame's partial state — the
// connection is unrecoverable).
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// acquire binds h with backoff, waiting out transient slot exhaustion
// (connections beyond MaxConns queue here between bursts). Returns false
// when the server is closing.
func (s *Server) acquire(h *hashmap.PartitionedHandle[[]byte]) bool {
	for wait := time.Microsecond; ; {
		if h.TryAcquire() {
			return true
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return false
		}
		time.Sleep(wait)
		if wait < time.Millisecond {
			wait *= 2
		}
	}
}

// serveRequest appends req's response frame to out. Mutating requests copy
// their value bytes out of the read buffer before the map sees them (the
// buffer is reused for the next frame; stored values must own their memory).
func (s *Server) serveRequest(out []byte, h *hashmap.PartitionedHandle[[]byte], req kvwire.Request, local *tally) []byte {
	switch req.Op {
	case kvwire.OpGet:
		local.gets++
		if v, ok := h.Get(req.Key); ok {
			local.getHits++
			return kvwire.AppendResponse(out, kvwire.StatusOK, v)
		}
		return kvwire.AppendResponse(out, kvwire.StatusNotFound, nil)
	case kvwire.OpPut:
		local.puts++
		v := append(make([]byte, 0, len(req.Value)), req.Value...)
		_, replaced := h.Upsert(req.Key, v)
		flag := byte(0)
		if replaced {
			local.putReplaced++
			flag = 1
		}
		return kvwire.AppendResponse(out, kvwire.StatusOK, []byte{flag})
	case kvwire.OpDel:
		local.dels++
		flag := byte(0)
		if h.Delete(req.Key) {
			local.delHits++
			flag = 1
		}
		return kvwire.AppendResponse(out, kvwire.StatusOK, []byte{flag})
	case kvwire.OpStats:
		local.statsReqs++
		body, err := json.Marshal(s.snapshotLocked(local))
		if err != nil {
			return kvwire.AppendResponse(out, kvwire.StatusErr, []byte(err.Error()))
		}
		return kvwire.AppendResponse(out, kvwire.StatusOK, body)
	default:
		return kvwire.AppendResponse(out, kvwire.StatusErr, []byte(kvwire.ErrUnknownOp.Error()))
	}
}

// Snapshot is the server's statistics document: the STATS response body and
// the shape Stats returns. Counters are exact for quiesced traffic and
// at-least-as-of-last-burst for connections mid-burst (their local tallies
// merge at burst boundaries).
type Snapshot struct {
	Scheme     string `json:"scheme"`
	Partitions int    `json:"partitions"`
	OpenConns  int    `json:"open_conns"`
	// SlotCapacity is each partition's worker-slot capacity (MaxConns);
	// SlotsLive is the currently bound slot count summed over partitions.
	SlotCapacity int `json:"slot_capacity"`
	SlotsLive    int `json:"slots_live"`
	// Keys is the summed element count over partitions.
	Keys int `json:"keys"`

	Gets        int64 `json:"gets"`
	GetHits     int64 `json:"get_hits"`
	Puts        int64 `json:"puts"`
	PutReplaced int64 `json:"put_replaced"`
	Dels        int64 `json:"dels"`
	DelHits     int64 `json:"del_hits"`
	StatsReqs   int64 `json:"stats_reqs"`

	Manager ManagerSnapshot `json:"manager"`

	// Adaptive holds one entry per partition's self-tuning controller
	// (Config.Adaptive); empty when the server runs with static knobs.
	Adaptive []ControllerSnapshot `json:"adaptive,omitempty"`
}

// ControllerSnapshot is one partition controller's current lever positions
// and activity counters (see core.Controller).
type ControllerSnapshot struct {
	// EffectiveShards, RetireBatch and ActiveReclaimers are the current
	// lever positions (RetireBatch 0 when batching is off, ActiveReclaimers
	// 0 when reclamation is synchronous).
	EffectiveShards  int `json:"effective_shards"`
	RetireBatch      int `json:"retire_batch"`
	ActiveReclaimers int `json:"active_reclaimers"`
	// Live is the partition's bound worker-slot count at the controller's
	// last observation.
	Live int `json:"live"`
	// Steps and Decisions count control steps taken and lever writes made
	// (a converged controller steps often and decides rarely).
	Steps     int   `json:"steps"`
	Decisions int64 `json:"decisions"`
}

// ManagerSnapshot is the reclamation half of a Snapshot, summed over the
// partitions' Record Managers.
type ManagerSnapshot struct {
	Retired         int64 `json:"retired"`
	Freed           int64 `json:"freed"`
	Limbo           int64 `json:"limbo"`
	Unreclaimed     int64 `json:"unreclaimed"`
	EpochAdvances   int64 `json:"epoch_advances"`
	Scans           int64 `json:"scans"`
	Neutralizations int64 `json:"neutralizations"`
	Allocated       int64 `json:"allocated"`
	AllocatedBytes  int64 `json:"allocated_bytes"`
	PoolReused      int64 `json:"pool_reused"`
}

// Stats returns the server's statistics document (same content as a STATS
// response). Safe to call while serving and after Close.
func (s *Server) Stats() Snapshot {
	return s.snapshotLocked(nil)
}

// snapshotLocked builds a Snapshot, folding in the calling connection's
// unmerged tally when inline is non-nil (so a connection's own STATS request
// sees its own preceding operations).
func (s *Server) snapshotLocked(inline *tally) Snapshot {
	s.mu.Lock()
	t := s.totals
	open := len(s.conns)
	s.mu.Unlock()
	if inline != nil {
		t.add(*inline)
	}
	live := 0
	var adaptive []ControllerSnapshot
	for p := 0; p < s.pm.Partitions(); p++ {
		m := s.pm.Partition(p).Manager()
		live += m.SlotRegistry().Live()
		if c := m.Controller(); c != nil {
			cs := ControllerSnapshot{
				EffectiveShards: m.SlotRegistry().EffectiveShards(),
				Steps:           c.Steps(),
				Decisions:       c.Decisions(),
			}
			if last, ok := c.Last(); ok {
				cs.RetireBatch = last.RetireBatch
				cs.ActiveReclaimers = last.ActiveReclaimers
				cs.Live = last.Live
			}
			adaptive = append(adaptive, cs)
		}
	}
	ms := s.pm.ManagerStats()
	return Snapshot{
		Scheme:       s.cfg.Scheme,
		Partitions:   s.cfg.Partitions,
		OpenConns:    open,
		SlotCapacity: s.cfg.MaxConns,
		SlotsLive:    live,
		Keys:         s.pm.Count(),
		Gets:         t.gets,
		GetHits:      t.getHits,
		Puts:         t.puts,
		PutReplaced:  t.putReplaced,
		Dels:         t.dels,
		DelHits:      t.delHits,
		StatsReqs:    t.statsReqs,
		Adaptive:     adaptive,
		Manager: ManagerSnapshot{
			Retired:         ms.Reclaimer.Retired,
			Freed:           ms.Reclaimer.Freed,
			Limbo:           ms.Reclaimer.Limbo,
			Unreclaimed:     ms.Unreclaimed,
			EpochAdvances:   ms.Reclaimer.EpochAdvances,
			Scans:           ms.Reclaimer.Scans,
			Neutralizations: ms.Reclaimer.Neutralizations,
			Allocated:       ms.Alloc.Allocated,
			AllocatedBytes:  ms.Alloc.AllocatedBytes,
			PoolReused:      ms.Pool.Reused,
		},
	}
}
