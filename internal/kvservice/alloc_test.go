package kvservice_test

import (
	"net"
	"testing"

	"repro/internal/kvservice"
	"repro/internal/kvwire"
	"repro/internal/recordmgr"
)

// These tests enforce the zero-alloc steady state of the server's request
// path with testing.AllocsPerRun. The count is process-wide (the server's
// goroutines run in this process), so the client loop below must itself be
// allocation-free: a pre-encoded request frame, one Write, one ReadFrame
// into a reused buffer. Whatever AllocsPerRun reports is then the server's
// per-request cost plus the amortised tails (arena chunk growth, pool block
// recycling), which is exactly the bound the batch path is designed to hold.

// allocClient is the zero-allocation closed-loop client driven inside
// AllocsPerRun.
type allocClient struct {
	t    *testing.T
	conn net.Conn
	req  []byte
	buf  []byte
}

func (c *allocClient) do() {
	if _, err := c.conn.Write(c.req); err != nil {
		c.t.Fatalf("write: %v", err)
	}
	payload, err := kvwire.ReadFrame(c.conn, c.buf)
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	c.buf = payload
}

// measureServerAllocs starts a server, warms the connection's buffers and the
// map past every growth tail, and returns the steady-state allocations per
// round trip of the given request frame.
func measureServerAllocs(t *testing.T, req []byte) float64 {
	t.Helper()
	srv, addr := startServer(t, kvservice.Config{
		Scheme:  recordmgr.SchemeDEBRA,
		UsePool: true,
		// A huge burst keeps slot release/reacquire churn out of the
		// measurement: the test bounds the request path, not slot turnover.
		Burst: 1 << 20,
	})
	defer srv.Close()
	conn, err := net.Dial(addr.Network(), addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	c := &allocClient{t: t, conn: conn, buf: make([]byte, 256)}
	// Seed the key so GETs hit and PUTs replace, then warm: the first requests
	// grow the connection's read/write buffers, the value arena and the map
	// node pool, all of which must be out of the way before counting.
	c.req = kvwire.AppendPut(nil, 1, make([]byte, 16))
	c.do()
	c.req = req
	for i := 0; i < 2000; i++ {
		c.do()
	}
	return testing.AllocsPerRun(5000, c.do)
}

func TestSteadyStateGetAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is a long loop")
	}
	allocs := measureServerAllocs(t, kvwire.AppendGet(nil, 1))
	t.Logf("steady-state GET: %.3f allocs/op (process-wide)", allocs)
	if allocs > 1 {
		t.Fatalf("steady-state GET allocates %.3f/op, want <= 1", allocs)
	}
}

func TestSteadyStatePutAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is a long loop")
	}
	allocs := measureServerAllocs(t, kvwire.AppendPut(nil, 1, make([]byte, 16)))
	t.Logf("steady-state PUT: %.3f allocs/op (process-wide)", allocs)
	// PUT carries the amortised tails GET does not: a fresh 64KiB value-arena
	// chunk every ~4096 16-byte values and the pool's block recycling under
	// retire pressure.
	if allocs > 2 {
		t.Fatalf("steady-state PUT allocates %.3f/op, want <= 2", allocs)
	}
}
